#ifndef AQV_EVAL_DATABASE_H_
#define AQV_EVAL_DATABASE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cq/catalog.h"
#include "eval/relation.h"

namespace aqv {

/// \brief A database instance: one Relation per predicate, keyed by PredId.
///
/// Relations are created lazily with the catalog-declared arity. Missing
/// relations read as empty.
class Database {
 public:
  Database() : catalog_(nullptr) {}
  explicit Database(const Catalog* catalog) : catalog_(catalog) {}

  const Catalog* catalog() const { return catalog_; }

  /// The relation for `pred`, creating it (empty) on first touch.
  Relation* GetOrCreate(PredId pred);

  /// The relation for `pred`, or nullptr if never touched.
  const Relation* Find(PredId pred) const;

  /// Appends a tuple to `pred`'s relation.
  void Add(PredId pred, const std::vector<Value>& row);

  /// Installs `rel` as the relation of its own predicate, replacing any
  /// existing one — how the storage engine mounts persisted extents
  /// (possibly mmap-backed) into a database. Returns the installed slot.
  Relation* Install(Relation rel);

  /// Predicates with a (possibly empty) relation present.
  std::vector<PredId> Predicates() const;

  uint64_t TotalTuples() const;

  /// SortDedup() on every relation.
  void DedupAll();

  /// Measured statistics of `pred`'s relation (cardinality, per-column
  /// distinct counts, numeric min/max), computed on first demand after
  /// the last mutation and cached on the relation; nullptr when the
  /// relation was never touched. Feeds ExtentStats::FromDatabase and
  /// through it the planner's cost model.
  std::shared_ptr<const RelationStats> Stats(PredId pred) const;

 private:
  const Catalog* catalog_;
  std::map<PredId, Relation> rels_;
};

}  // namespace aqv

#endif  // AQV_EVAL_DATABASE_H_
