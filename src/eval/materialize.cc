#include "eval/materialize.h"

namespace aqv {

Result<Database> MaterializeViews(const ViewSet& views, const Database& base,
                                  const EvalOptions& options) {
  Database out(base.catalog());
  for (const View& view : views.views()) {
    AQV_ASSIGN_OR_RETURN(Relation extent,
                         EvaluateQuery(view.definition, base, options));
    Relation* dst = out.GetOrCreate(view.pred);
    *dst = std::move(extent);
  }
  return out;
}

}  // namespace aqv
