#include "eval/materialize.h"

namespace aqv {

Result<Database> MaterializeViews(const ViewSet& views, const Database& base,
                                  const EvalOptions& options,
                                  EvalStats* stats) {
  Database out(base.catalog());
  for (const View& view : views.views()) {
    AQV_ASSIGN_OR_RETURN(
        Relation extent, EvaluateQuery(view.definition, base, options, stats));
    Relation* dst = out.GetOrCreate(view.pred);
    if (dst->empty()) {
      // First (or only) rule for this predicate: adopt its extent outright.
      *dst = std::move(extent);
      continue;
    }
    // Union-source predicate (several rules share one head): the extent is
    // the union of every rule's output, deduplicated — assignment here used
    // to clobber the earlier rules' rows.
    if (extent.arity() == 0) {
      if (!extent.empty()) dst->Add({});
      continue;
    }
    for (size_t i = 0; i < extent.size(); ++i) dst->AppendRowFrom(extent, i);
    dst->SortDedup();
  }
  return out;
}

}  // namespace aqv
