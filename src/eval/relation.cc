#include "eval/relation.h"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>

namespace aqv {

Relation::Relation(PredId pred, int arity) : pred_(pred), arity_(arity) {
  if (arity_ > 0) store_ = MakeColumnarStore(arity_);
}

Relation::Relation(PredId pred, int arity, std::unique_ptr<ColumnStore> store,
                   bool sorted)
    : pred_(pred), arity_(arity), store_(std::move(store)) {
  assert(arity_ >= 1);
  assert(store_ != nullptr && store_->arity() == arity_);
  sorted_ = sorted || store_->rows() <= 1;
}

Relation::Relation(const Relation& other)
    : pred_(other.pred_),
      arity_(other.arity_),
      nullary_present_(other.nullary_present_),
      sorted_(other.sorted_) {
  if (other.store_ != nullptr) store_ = other.store_->Clone();
  // Cached indexes and stats are immutable snapshots of the same rows, so
  // the copy may share them (datalog's Database copy keeps its EDB
  // relations' indexes warm across fixpoint rounds).
  std::lock_guard<std::mutex> lock(other.cache_mu_);
  indexes_ = other.indexes_;
  stats_ = other.stats_;
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  Relation copy(other);
  *this = std::move(copy);
  return *this;
}

Relation::Relation(Relation&& other) noexcept
    : pred_(other.pred_),
      arity_(other.arity_),
      nullary_present_(other.nullary_present_),
      sorted_(other.sorted_),
      store_(std::move(other.store_)),
      indexes_(std::move(other.indexes_)),
      stats_(std::move(other.stats_)) {}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  pred_ = other.pred_;
  arity_ = other.arity_;
  nullary_present_ = other.nullary_present_;
  sorted_ = other.sorted_;
  store_ = std::move(other.store_);
  indexes_ = std::move(other.indexes_);
  stats_ = std::move(other.stats_);
  return *this;
}

void Relation::InvalidateDerived() {
  if (!indexes_.empty()) indexes_.clear();
  if (stats_ != nullptr) stats_ = nullptr;
}

void Relation::Add(const std::vector<Value>& row) {
  assert(static_cast<int>(row.size()) == arity_);
  AddRow(row.data());
}

void Relation::AddRow(const Value* row) {
  InvalidateDerived();
  if (arity_ == 0) {
    nullary_present_ = true;
    return;
  }
  if (store_ == nullptr) store_ = MakeColumnarStore(arity_);
  store_->Append(row);
  sorted_ = store_->rows() <= 1;
}

void Relation::AppendRowFrom(const Relation& src, size_t i) {
  assert(src.arity_ == arity_);
  InvalidateDerived();
  if (arity_ == 0) {
    nullary_present_ = true;
    return;
  }
  if (store_ == nullptr) store_ = MakeColumnarStore(arity_);
  std::vector<Value> row(static_cast<size_t>(arity_));
  for (int c = 0; c < arity_; ++c) row[static_cast<size_t>(c)] = src.at(i, c);
  store_->Append(row.data());
  sorted_ = store_->rows() <= 1;
}

void Relation::Reserve(size_t n) {
  if (arity_ == 0) return;
  if (store_ == nullptr) store_ = MakeColumnarStore(arity_);
  store_->Reserve(n);
}

std::vector<Value> Relation::RowCopy(size_t i) const {
  std::vector<Value> out(static_cast<size_t>(arity_));
  for (int c = 0; c < arity_; ++c) out[static_cast<size_t>(c)] = at(i, c);
  return out;
}

void Relation::SortDedup() {
  InvalidateDerived();
  if (arity_ == 0) {
    sorted_ = true;
    return;
  }
  size_t n = size();
  assert(n < std::numeric_limits<uint32_t>::max());
  std::vector<const Value*> cols(static_cast<size_t>(arity_));
  for (int c = 0; c < arity_; ++c) cols[static_cast<size_t>(c)] = ColumnData(c);
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  auto less = [&](uint32_t a, uint32_t b) {
    for (int c = 0; c < arity_; ++c) {
      Value va = cols[static_cast<size_t>(c)][a];
      Value vb = cols[static_cast<size_t>(c)][b];
      if (va != vb) return va < vb;
    }
    return false;
  };
  auto equal = [&](uint32_t a, uint32_t b) {
    for (int c = 0; c < arity_; ++c) {
      if (cols[static_cast<size_t>(c)][a] != cols[static_cast<size_t>(c)][b]) {
        return false;
      }
    }
    return true;
  };
  std::sort(order.begin(), order.end(), less);
  std::vector<uint32_t> keep;
  keep.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && equal(order[i], order[i - 1])) continue;
    keep.push_back(order[i]);
  }
  store_->Rewrite(keep);
  sorted_ = true;
}

int Relation::CompareRow(size_t i, const std::vector<Value>& row) const {
  for (int c = 0; c < arity_; ++c) {
    Value v = at(i, c);
    Value t = row[static_cast<size_t>(c)];
    if (v < t) return -1;
    if (v > t) return 1;
  }
  return 0;
}

bool Relation::Contains(const std::vector<Value>& row) const {
  if (arity_ == 0) return nullary_present_;
  size_t n = size();
  if (sorted_) {
    // Lexicographic binary search over the sorted, deduplicated rows.
    size_t lo = 0;
    size_t hi = n;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      int cmp = CompareRow(mid, row);
      if (cmp == 0) return true;
      if (cmp < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return false;
  }
  for (size_t i = 0; i < n; ++i) {
    if (CompareRow(i, row) == 0) return true;
  }
  return false;
}

std::vector<std::vector<Value>> Relation::Rows() const {
  std::vector<std::vector<Value>> out;
  if (arity_ == 0) {
    if (nullary_present_) out.push_back({});
    return out;
  }
  size_t n = size();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(RowCopy(i));
  return out;
}

bool Relation::SameSet(const Relation& a, const Relation& b) {
  if (a.arity() != b.arity()) return false;
  Relation ca = a, cb = b;
  ca.SortDedup();
  cb.SortDedup();
  if (ca.size() != cb.size()) return false;
  if (a.arity() == 0) return true;
  for (size_t i = 0; i < ca.size(); ++i) {
    for (int c = 0; c < ca.arity(); ++c) {
      if (ca.at(i, c) != cb.at(i, c)) return false;
    }
  }
  return true;
}

std::string Relation::ToString(const Catalog& catalog,
                               const SkolemTable* skolems) const {
  std::string out;
  if (arity_ == 0) return nullary_present_ ? "{()}\n" : "{}\n";
  for (size_t i = 0; i < size(); ++i) {
    out += "(";
    for (int c = 0; c < arity_; ++c) {
      if (c > 0) out += ", ";
      out += ValueToString(catalog, at(i, c), skolems);
    }
    out += ")\n";
  }
  return out;
}

std::shared_ptr<const HashIndex> Relation::IndexOn(
    const std::vector<int>& columns, bool* built) const {
  assert(!columns.empty());
  assert(std::is_sorted(columns.begin(), columns.end()));
  assert(columns.back() < arity_);
  if (built != nullptr) *built = false;
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = indexes_.find(columns);
  if (it != indexes_.end()) return it->second;

  auto index = std::make_shared<HashIndex>();
  index->columns = columns;
  size_t n = size();
  assert(n < std::numeric_limits<uint32_t>::max());
  index->rows_indexed = n;
  index->postings.reserve(n);
  std::vector<const Value*> cols(columns.size());
  for (size_t k = 0; k < columns.size(); ++k) {
    cols[k] = ColumnData(columns[k]);
  }
  std::vector<Value> key(columns.size());
  for (size_t r = 0; r < n; ++r) {
    for (size_t k = 0; k < columns.size(); ++k) key[k] = cols[k][r];
    index->postings[key].push_back(static_cast<uint32_t>(r));
  }
  indexes_.emplace(columns, index);
  if (built != nullptr) *built = true;
  return index;
}

size_t Relation::CachedIndexCount() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return indexes_.size();
}

std::shared_ptr<const RelationStats> Relation::Measured() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  if (stats_ != nullptr) return stats_;
  auto stats = std::make_shared<RelationStats>();
  stats->cardinality = size();
  stats->columns.resize(static_cast<size_t>(arity_));
  size_t n = size();
  for (int c = 0; c < arity_; ++c) {
    RelationStats::Column& col = stats->columns[static_cast<size_t>(c)];
    if (n == 0) continue;
    const Value* data = ColumnData(c);
    std::vector<Value> values(data, data + n);
    std::sort(values.begin(), values.end());
    col.distinct = 1;
    for (size_t i = 1; i < n; ++i) {
      if (values[i] != values[i - 1]) ++col.distinct;
    }
    for (Value v : values) {
      if (!IsPlainNumeric(v)) continue;
      if (!col.has_numeric_range) {
        col.min = col.max = v;
        col.has_numeric_range = true;
      } else {
        col.min = std::min(col.min, v);
        col.max = std::max(col.max, v);
      }
    }
  }
  stats_ = std::move(stats);
  return stats_;
}

}  // namespace aqv
