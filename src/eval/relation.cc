#include "eval/relation.h"

#include <algorithm>
#include <cassert>

namespace aqv {

void Relation::Add(const std::vector<Value>& row) {
  assert(static_cast<int>(row.size()) == arity_);
  if (arity_ == 0) {
    nullary_present_ = true;
    return;
  }
  data_.insert(data_.end(), row.begin(), row.end());
}

void Relation::AddRow(const Value* row) {
  if (arity_ == 0) {
    nullary_present_ = true;
    return;
  }
  data_.insert(data_.end(), row, row + arity_);
}

void Relation::SortDedup() {
  if (arity_ == 0) return;
  size_t n = size();
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  auto less = [&](size_t a, size_t b) {
    const Value* ra = row(a);
    const Value* rb = row(b);
    for (int c = 0; c < arity_; ++c) {
      if (ra[c] != rb[c]) return ra[c] < rb[c];
    }
    return false;
  };
  auto equal = [&](size_t a, size_t b) {
    const Value* ra = row(a);
    const Value* rb = row(b);
    for (int c = 0; c < arity_; ++c) {
      if (ra[c] != rb[c]) return false;
    }
    return true;
  };
  std::sort(order.begin(), order.end(), less);
  std::vector<Value> out;
  out.reserve(data_.size());
  for (size_t i = 0; i < n; ++i) {
    if (i > 0 && equal(order[i], order[i - 1])) continue;
    const Value* r = row(order[i]);
    out.insert(out.end(), r, r + arity_);
  }
  data_ = std::move(out);
}

bool Relation::Contains(const std::vector<Value>& row_values) const {
  if (arity_ == 0) return nullary_present_;
  for (size_t i = 0; i < size(); ++i) {
    const Value* r = row(i);
    bool match = true;
    for (int c = 0; c < arity_; ++c) {
      if (r[c] != row_values[c]) {
        match = false;
        break;
      }
    }
    if (match) return true;
  }
  return false;
}

std::vector<std::vector<Value>> Relation::Rows() const {
  std::vector<std::vector<Value>> out;
  if (arity_ == 0) {
    if (nullary_present_) out.push_back({});
    return out;
  }
  for (size_t i = 0; i < size(); ++i) {
    out.emplace_back(row(i), row(i) + arity_);
  }
  return out;
}

bool Relation::SameSet(const Relation& a, const Relation& b) {
  if (a.arity() != b.arity()) return false;
  Relation ca = a, cb = b;
  ca.SortDedup();
  cb.SortDedup();
  if (ca.size() != cb.size()) return false;
  if (a.arity() == 0) return true;
  for (size_t i = 0; i < ca.size(); ++i) {
    for (int c = 0; c < ca.arity(); ++c) {
      if (ca.at(i, c) != cb.at(i, c)) return false;
    }
  }
  return true;
}

std::string Relation::ToString(const Catalog& catalog,
                               const SkolemTable* skolems) const {
  std::string out;
  if (arity_ == 0) return nullary_present_ ? "{()}\n" : "{}\n";
  for (size_t i = 0; i < size(); ++i) {
    out += "(";
    for (int c = 0; c < arity_; ++c) {
      if (c > 0) out += ", ";
      out += ValueToString(catalog, at(i, c), skolems);
    }
    out += ")\n";
  }
  return out;
}

}  // namespace aqv
