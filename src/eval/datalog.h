#ifndef AQV_EVAL_DATALOG_H_
#define AQV_EVAL_DATALOG_H_

#include <vector>

#include "cq/query.h"
#include "eval/database.h"
#include "eval/evaluator.h"
#include "eval/value.h"
#include "rewriting/inverse_rules.h"
#include "util/status.h"

namespace aqv {

/// A positive datalog program: CQ-shaped rules with intensional heads.
struct DatalogProgram {
  std::vector<Query> rules;
};

/// \brief Naive-iteration fixpoint evaluation of a positive datalog program
/// over `edb`. Each round evaluates every rule against the accumulated
/// database and inserts new head tuples; stops when a round adds nothing.
///
/// Recursion is supported (rounds are bounded by `max_rounds` as a guard);
/// the inverse-rules programs this library generates are non-recursive and
/// converge in one round.
[[nodiscard]] Result<Database> EvaluateDatalogProgram(const DatalogProgram& program,
                                        const Database& edb,
                                        const EvalOptions& options = {},
                                        int max_rounds = 10'000);

/// \brief Applies an inverse-rules program to view extents, reconstructing
/// base-relation facts. Unknown values materialize as Skolem Values interned
/// in `*skolems` (shared across rules so equal Skolem terms join).
///
/// The result contains only the derived base relations; feed it to
/// EvaluateQuery and drop Skolem-carrying rows for certain answers (see
/// certain.h).
[[nodiscard]] Result<Database> ApplyInverseRules(const InverseRuleSet& rules,
                                   const Database& view_extents,
                                   SkolemTable* skolems,
                                   const EvalOptions& options = {});

}  // namespace aqv

#endif  // AQV_EVAL_DATALOG_H_
