/// \file
/// Umbrella header of the `eval` module: executing CQs over concrete data.
/// Evaluate runs a hash-join pipeline (greedy atom order: most-bound
/// variables first, then smallest relation) against a Database of
/// Relations; materialize.h computes view extents, certain.h implements the
/// two LAV answering routes (union rewriting evaluation and inverse rules +
/// datalog.h fixpoint with Skolem filtering). Invariants: evaluation never
/// mutates the database, respects EvalOptions::intermediate_row_cap
/// (kResourceExhausted past it), and emits deduplicated head tuples in a
/// deterministic order for a fixed input.

#ifndef AQV_EVAL_EVALUATOR_H_
#define AQV_EVAL_EVALUATOR_H_

#include <cstdint>

#include "cq/query.h"
#include "eval/database.h"
#include "eval/relation.h"
#include "util/status.h"

namespace aqv {

/// Options for query evaluation.
struct EvalOptions {
  /// Cap on the number of intermediate binding rows produced across the join
  /// pipeline (kResourceExhausted past it).
  uint64_t intermediate_row_cap = 50'000'000;
};

/// Collected per-evaluation statistics (for F5 and diagnosis).
struct EvalStats {
  uint64_t intermediate_rows = 0;
  uint64_t probes = 0;
};

/// \brief Evaluates a conjunctive query over a database.
///
/// Join pipeline: body atoms are ordered greedily (most already-bound
/// variables first, then smallest relation); each step hash-joins the
/// current binding set against the atom's relation. Constants and repeated
/// variables filter during index construction. Comparisons apply as soon as
/// both sides are bound; `<`/`<=` hold only between plain numeric values,
/// `=`/`!=` compare raw values (so Skolems join by identity).
///
/// The result relation has the head's predicate and arity, deduplicated
/// (set semantics).
Result<Relation> EvaluateQuery(const Query& q, const Database& db,
                               const EvalOptions& options = {},
                               EvalStats* stats = nullptr);

/// Evaluates a union of CQs and dedups the combined result.
Result<Relation> EvaluateUnion(const UnionQuery& u, const Database& db,
                               const EvalOptions& options = {},
                               EvalStats* stats = nullptr);

}  // namespace aqv

#endif  // AQV_EVAL_EVALUATOR_H_
