/// \file
/// Umbrella header of the `eval` module: executing CQs over concrete data.
/// Evaluate runs a hash-join pipeline (greedy atom order: most-bound
/// variables first, then smallest relation) against a Database of
/// columnar Relations; materialize.h computes view extents, certain.h
/// implements the two LAV answering routes (union rewriting evaluation and
/// inverse rules + datalog.h fixpoint with Skolem filtering). Join probes
/// go through persistent per-relation hash indexes (relation.h IndexOn) —
/// built once per (relation, key-column-set), cached on the relation, and
/// reused across the pipeline, view materialization, fixpoint rounds, and
/// repeated answer calls; EvalOptions::use_cached_indexes = false restores
/// the per-query throwaway build as a measured baseline. Invariants:
/// evaluation never mutates the database, respects
/// EvalOptions::intermediate_row_cap (kResourceExhausted past it), and
/// emits deduplicated head tuples in a deterministic order for a fixed
/// input — bit-identical with index caching on or off.

#ifndef AQV_EVAL_EVALUATOR_H_
#define AQV_EVAL_EVALUATOR_H_

#include <cstdint>

#include "cq/query.h"
#include "eval/database.h"
#include "eval/relation.h"
#include "util/status.h"

namespace aqv {

/// Options for query evaluation.
struct EvalOptions {
  /// Cap on the number of intermediate binding rows produced across the join
  /// pipeline (kResourceExhausted past it).
  uint64_t intermediate_row_cap = 50'000'000;
  /// Probe the persistent per-relation hash indexes (built once, cached on
  /// the relation, invalidated by mutation). Off: rebuild a throwaway
  /// index inside every evaluation — the pre-index-cache row-at-a-time
  /// baseline, kept for benchmarking (bench_f5_eval_speedup) and the
  /// cached-vs-cold equivalence property test. Results are bit-identical
  /// either way.
  bool use_cached_indexes = true;
};

/// Collected per-evaluation statistics (for F5 and diagnosis).
struct EvalStats {
  uint64_t intermediate_rows = 0;
  /// Index lookups: one per binding row per joined atom (identical with
  /// caching on or off).
  uint64_t probes = 0;
  /// Hash-index builds: cached-index cache misses, plus every throwaway
  /// per-query build when use_cached_indexes is off.
  uint64_t index_builds = 0;
  /// Reuses of a relation's cached hash index (always 0 with
  /// use_cached_indexes off) — the counter that proves sharing across
  /// union disjuncts, fixpoint rounds, and repeated calls.
  uint64_t index_hits = 0;
};

/// \brief Evaluates a conjunctive query over a database.
///
/// Join pipeline: body atoms are ordered greedily (most already-bound
/// variables first, then smallest relation); each step hash-joins the
/// current binding set against the atom's relation through the relation's
/// cached hash index keyed by the bound-variable *and* constant argument
/// positions (within-atom repeated variables filter per matched row).
/// Comparisons apply as soon as both sides are bound; `<`/`<=` hold only
/// between plain numeric values, `=`/`!=` compare raw values (so Skolems
/// join by identity).
///
/// The result relation has the head's predicate and arity, deduplicated
/// (set semantics).
[[nodiscard]] Result<Relation> EvaluateQuery(const Query& q, const Database& db,
                               const EvalOptions& options = {},
                               EvalStats* stats = nullptr);

/// Evaluates a union of CQs and dedups the combined result. Disjuncts
/// share the relations' cached indexes (EvalStats::index_hits counts the
/// reuse).
[[nodiscard]] Result<Relation> EvaluateUnion(const UnionQuery& u, const Database& db,
                               const EvalOptions& options = {},
                               EvalStats* stats = nullptr);

}  // namespace aqv

#endif  // AQV_EVAL_EVALUATOR_H_
