/// \file
/// Umbrella header of the `storage` module: the crash-safe persistence
/// engine behind the frontend's `save`/`open` commands. One *database
/// directory* holds one answering-queries-using-views problem:
///
///   LOCK             flock'd while a session is attached (fs.h DirLock)
///   MANIFEST         the committed snapshot descriptor (manifest.h),
///                    swapped atomically — recovery starts here
///   <pred>.<gen>.seg immutable columnar segment files (segment.h), one
///                    per persisted relation, generation-stamped
///   journal.<gen>    append-only mutation log since the snapshot
///
/// Durability model (ursadb's OnDiskDataset/DatabaseSnapshot shape):
/// a snapshot writes new-generation segments and a fresh empty journal,
/// fsyncs each, then commits by atomically replacing MANIFEST and
/// fsyncing the directory; only after the commit are old-generation
/// files garbage-collected. Mutations between snapshots append framed,
/// checksummed records to the journal (fsync'd per record when
/// `StoreOptions::sync`). Recovery is therefore always: parse MANIFEST
/// (old or new, never torn), mount its segments (mmap-backed by
/// default), truncate any torn journal tail, replay the rest. A crash at
/// *any* write position loses at most unacknowledged work.
///
/// The store knows catalogs, rule *text*, and databases — not ViewSet or
/// Session. The frontend renders rules down and parses them back up, so
/// storage sits below views/frontend in the module graph.

#ifndef AQV_STORAGE_STORE_H_
#define AQV_STORAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cq/catalog.h"
#include "eval/database.h"
#include "storage/fs.h"
#include "util/status.h"

namespace aqv {

/// Storage-engine knobs (threaded through SessionOptions).
struct StoreOptions {
  /// Serve persisted extents through the read-only mmap backend
  /// (eval/mmap_store.h) instead of copying them onto the heap — the
  /// larger-than-RAM mode. Journal-replayed facts still append on the
  /// heap (the store upgrades copy-on-write).
  bool use_mmap = true;
  /// fsync segments, journal records, and manifest swaps. Turning this
  /// off trades crash safety on power loss for speed; the atomic-rename
  /// commit discipline is kept either way.
  bool sync = true;
  /// Re-verify segment data checksums on open. Off by default: a
  /// committed manifest only ever references fully-written segments, and
  /// eagerly reading every byte would defeat lazy mmap paging. The
  /// recovery tests turn it on.
  bool verify_checksums = false;
};

/// What a snapshot persists — rendered down by the session so storage
/// needs no views/frontend types.
struct SnapshotInput {
  const Catalog* catalog = nullptr;
  /// Parseable rule text, one per view rule, ViewSet order.
  std::vector<std::string> view_rules;
  /// Parseable rule text, one per query disjunct; empty = no query.
  std::vector<std::string> query_rules;
  const Database* base = nullptr;
};

/// What recovery yields: a rebuilt catalog (constants and predicates
/// re-interned in manifest order, so persisted tagged Values decode), the
/// mounted base database, the rule text to re-parse, and the journal tail
/// to replay through the session dispatcher.
struct RecoveredState {
  std::unique_ptr<Catalog> catalog;
  std::vector<std::string> view_rules;
  std::vector<std::string> query_rules;
  Database base;
  std::vector<std::string> journal_commands;
  uint64_t generation = 0;
};

/// \brief One session's attachment to a database directory: the exclusive
/// lock, the journal appender, and the snapshot/recover operations. Not
/// thread-safe — owned by one Session, like every other session member.
class SessionStore {
 public:
  /// Locks (creating if needed) `dir` and reads the committed generation.
  /// kResourceExhausted when another session holds the lock; a missing or
  /// unreadable manifest is *not* an error here (a fresh directory has
  /// none) — Recover reports that.
  [[nodiscard]] static Result<std::unique_ptr<SessionStore>> Attach(
      const std::string& dir, const StoreOptions& options);

  ~SessionStore() = default;
  SessionStore(const SessionStore&) = delete;
  SessionStore& operator=(const SessionStore&) = delete;

  /// True when the directory holds a committed manifest.
  bool has_manifest() const;

  /// Loads the committed snapshot plus the intact journal tail
  /// (truncating a torn one), and leaves the journal open for appending.
  /// kNotFound when nothing was ever committed; kParseError only for
  /// corruption no crash can produce (foreign or hand-edited files).
  [[nodiscard]] Result<RecoveredState> Recover();

  /// Commits `input` as the next generation: segments + fresh journal
  /// written and fsync'd, manifest swapped atomically, old generation
  /// garbage-collected. On failure the previous commit is untouched.
  [[nodiscard]] Status Snapshot(const SnapshotInput& input);

  /// Appends one acknowledged mutation command to the journal (fsync'd
  /// when options.sync). Only valid after a successful Snapshot or
  /// Recover.
  [[nodiscard]] Status Append(const std::string& command);

  const std::string& dir() const { return dir_; }
  const StoreOptions& options() const { return options_; }
  uint64_t generation() const { return generation_; }
  uint64_t journal_records() const { return journal_records_; }
  uint64_t journal_bytes() const { return journal_bytes_; }

 private:
  SessionStore(std::string dir, StoreOptions options, DirLock lock)
      : dir_(std::move(dir)), options_(options), lock_(std::move(lock)) {}

  std::string Path(const std::string& file) const { return dir_ + "/" + file; }

  /// Removes files no longer referenced after a commit (old segments and
  /// journals, stray MANIFEST.tmp). Idempotent; orphans from a crash here
  /// are collected by the next snapshot.
  [[nodiscard]] Status CollectGarbage(const std::vector<std::string>& keep);

  std::string dir_;
  StoreOptions options_;
  DirLock lock_;
  std::optional<AppendFile> journal_;
  std::string journal_file_;
  uint64_t generation_ = 0;
  uint64_t journal_records_ = 0;
  uint64_t journal_bytes_ = 0;
};

}  // namespace aqv

#endif  // AQV_STORAGE_STORE_H_
