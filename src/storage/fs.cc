#include "storage/fs.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>

#include "storage/fault.h"

namespace aqv {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::Internal(what + " '" + path +
                          "' failed: " + std::strerror(errno));
}

Status InjectedCrash(const std::string& site) {
  return Status::Internal("injected crash at " + site);
}

std::string Basename(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Write loop with the byte-budget crash gate: a short FaultBytes return
/// writes that prefix and then fails, modeling a process killed mid-write.
Status WriteAllFaulted(int fd, const std::string& path,
                       const std::string& data) {
  size_t done = 0;
  while (done < data.size()) {
    size_t want = data.size() - done;
    size_t allow = FaultBytes(want);
    size_t written = 0;
    while (written < allow) {
      ssize_t n =
          ::write(fd, data.data() + done + written, allow - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Errno("write", path);
      }
      written += static_cast<size_t>(n);
    }
    done += allow;
    if (allow < want) return InjectedCrash("write:" + Basename(path));
  }
  return Status::OK();
}

const std::array<uint32_t, 256>& Crc32Table() {
  static const std::array<uint32_t, 256>* table = [] {
    auto* t = new std::array<uint32_t, 256>();
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      (*t)[i] = c;
    }
    return t;
  }();
  return *table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n, uint32_t seed) {
  const auto& table = Crc32Table();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

Status EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
    if (!S_ISDIR(st.st_mode)) {
      return Status::InvalidArgument("'" + path + "' is not a directory");
    }
    return Status::OK();
  }
  return Errno("mkdir", path);
}

bool FileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> FileSize(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return Errno("stat", path);
  return static_cast<uint64_t>(st.st_size);
}

Result<std::vector<std::string>> ListDir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno("opendir", path);
  std::vector<std::string> names;
  while (struct dirent* entry = ::readdir(dir)) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(std::move(name));
  }
  ::closedir(dir);
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::string> ReadFile(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: '" + path + "'");
    }
    return Errno("open", path);
  }
  std::string out;
  char buf[1 << 16];
  while (true) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status st = Errno("read", path);
      ::close(fd);
      return st;
    }
    if (n == 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) == 0 || errno == ENOENT) return Status::OK();
  return Errno("unlink", path);
}

Status TruncateFile(const std::string& path, uint64_t size) {
  if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
    return Errno("truncate", path);
  }
  return Status::OK();
}

Status WriteFileDurable(const std::string& path, const std::string& data,
                        bool sync) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", path);
  Status st = WriteAllFaulted(fd, path, data);
  if (st.ok() && sync) {
    if (FaultPoint("fsync")) {
      st = InjectedCrash("fsync:" + Basename(path));
    } else if (::fsync(fd) != 0) {
      st = Errno("fsync", path);
    }
  }
  ::close(fd);
  return st;
}

Status ReplaceFileAtomic(const std::string& path, const std::string& data,
                         bool sync) {
  std::string tmp = path + ".tmp";
  AQV_RETURN_NOT_OK(WriteFileDurable(tmp, data, sync));
  if (FaultPoint("rename")) {
    return InjectedCrash("rename:" + Basename(path));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) return Errno("rename", path);
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  return FsyncDir(dir, sync);
}

Status FsyncDir(const std::string& dir, bool sync) {
  if (!sync) return Status::OK();
  if (FaultPoint("fsyncdir")) return InjectedCrash("fsyncdir:" + dir);
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return Errno("open dir", dir);
  int rc = ::fsync(fd);
  Status st = rc == 0 ? Status::OK() : Errno("fsync dir", dir);
  ::close(fd);
  return st;
}

DirLock& DirLock::operator=(DirLock&& other) noexcept {
  if (this != &other) {
    Release();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void DirLock::Release() {
  if (fd_ >= 0) {
    ::close(fd_);  // closing drops the flock
    fd_ = -1;
  }
}

Result<DirLock> DirLock::Acquire(const std::string& dir) {
  std::string path = dir + "/LOCK";
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", path);
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return Status::ResourceExhausted(
        "database directory is locked by another session");
  }
  return DirLock(fd);
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<AppendFile> AppendFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
  if (fd < 0) return Errno("open", path);
  return AppendFile(fd);
}

Status AppendFile::Append(const std::string& data, bool sync) {
  if (fd_ < 0) return Status::Internal("append to a closed file");
  AQV_RETURN_NOT_OK(WriteAllFaulted(fd_, "journal", data));
  if (sync) {
    if (FaultPoint("fsync")) return InjectedCrash("fsync:journal");
    if (::fdatasync(fd_) != 0) return Errno("fdatasync", "journal");
  }
  return Status::OK();
}

}  // namespace aqv
