#include "storage/manifest.h"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "storage/fs.h"

namespace aqv {

namespace {

constexpr char kHeaderLine[] = "aqv-manifest v1";

std::string CrcHex(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

bool ParseU64(std::string_view text, uint64_t* out) {
  if (text.empty()) return false;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out);
  return ec == std::errc() && ptr == text.data() + text.size();
}

bool ParseHex32(std::string_view text, uint32_t* out) {
  if (text.empty() || text.size() > 8) return false;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), *out, 16);
  return ec == std::errc() && ptr == text.data() + text.size();
}

/// Splits "key rest" at the first space; key-only lines get empty rest.
void SplitKey(std::string_view line, std::string_view* key,
              std::string_view* rest) {
  size_t space = line.find(' ');
  if (space == std::string_view::npos) {
    *key = line;
    *rest = {};
  } else {
    *key = line.substr(0, space);
    *rest = line.substr(space + 1);
  }
}

std::string_view NextWord(std::string_view* rest) {
  size_t space = rest->find(' ');
  std::string_view word;
  if (space == std::string_view::npos) {
    word = *rest;
    *rest = {};
  } else {
    word = rest->substr(0, space);
    *rest = rest->substr(space + 1);
  }
  return word;
}

Status Bad(const std::string& what, std::string_view line) {
  return Status::ParseError("manifest: " + what + ": '" + std::string(line) +
                            "'");
}

}  // namespace

std::string EncodeManifest(const Manifest& manifest) {
  std::string out = std::string(kHeaderLine) + "\n";
  out += "generation " + std::to_string(manifest.generation) + "\n";
  out += "journal " + manifest.journal_file + "\n";
  for (const std::string& text : manifest.constants) {
    out += "const " + text + "\n";
  }
  for (const Manifest::Pred& p : manifest.preds) {
    out += "pred " + p.name + " " + std::to_string(p.arity) +
           (p.intensional ? " i\n" : " e\n");
  }
  for (const std::string& rule : manifest.view_rules) {
    out += "view " + rule + "\n";
  }
  for (const std::string& rule : manifest.query_rules) {
    out += "query " + rule + "\n";
  }
  for (const ManifestRelation& rel : manifest.relations) {
    out += "rel " + rel.pred + " " + std::to_string(rel.rows) + " " +
           CrcHex(rel.crc) + " " + rel.file + "\n";
  }
  out += "end " + CrcHex(Crc32(out.data(), out.size())) + "\n";
  return out;
}

Result<Manifest> ParseManifest(const std::string& text) {
  Manifest manifest;
  bool saw_header = false;
  bool saw_generation = false;
  bool saw_journal = false;
  bool saw_end = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) {
      return Status::ParseError("manifest: unterminated final line");
    }
    std::string_view line(text.data() + pos, nl - pos);
    if (!saw_header) {
      if (line != kHeaderLine) return Bad("bad header", line);
      saw_header = true;
      pos = nl + 1;
      continue;
    }
    std::string_view key;
    std::string_view rest;
    SplitKey(line, &key, &rest);
    if (key == "end") {
      uint32_t recorded = 0;
      if (!ParseHex32(rest, &recorded)) return Bad("bad end checksum", line);
      uint32_t actual = Crc32(text.data(), pos);
      if (recorded != actual) {
        return Status::ParseError("manifest: content checksum mismatch");
      }
      saw_end = true;
      pos = nl + 1;
      break;
    }
    if (key == "generation") {
      if (!ParseU64(rest, &manifest.generation)) {
        return Bad("bad generation", line);
      }
      saw_generation = true;
    } else if (key == "journal") {
      if (rest.empty()) return Bad("empty journal file", line);
      manifest.journal_file = std::string(rest);
      saw_journal = true;
    } else if (key == "const") {
      if (rest.empty()) return Bad("empty constant", line);
      manifest.constants.emplace_back(rest);
    } else if (key == "pred") {
      Manifest::Pred p;
      p.name = std::string(NextWord(&rest));
      uint64_t arity = 0;
      if (p.name.empty() || !ParseU64(NextWord(&rest), &arity)) {
        return Bad("bad pred entry", line);
      }
      std::string_view kind = NextWord(&rest);
      if ((kind != "e" && kind != "i") || !rest.empty()) {
        return Bad("bad pred kind", line);
      }
      p.arity = static_cast<int>(arity);
      p.intensional = kind == "i";
      manifest.preds.push_back(std::move(p));
    } else if (key == "view") {
      if (rest.empty()) return Bad("empty view rule", line);
      manifest.view_rules.emplace_back(rest);
    } else if (key == "query") {
      if (rest.empty()) return Bad("empty query rule", line);
      manifest.query_rules.emplace_back(rest);
    } else if (key == "rel") {
      ManifestRelation rel;
      rel.pred = std::string(NextWord(&rest));
      bool ok = !rel.pred.empty();
      ok = ok && ParseU64(NextWord(&rest), &rel.rows);
      ok = ok && ParseHex32(NextWord(&rest), &rel.crc);
      rel.file = std::string(rest);
      ok = ok && !rel.file.empty() &&
           rel.file.find('/') == std::string::npos;
      if (!ok) return Bad("bad rel entry", line);
      manifest.relations.push_back(std::move(rel));
    } else {
      return Bad("unknown key", line);
    }
    pos = nl + 1;
  }
  if (!saw_header) return Status::ParseError("manifest: empty file");
  if (!saw_end) return Status::ParseError("manifest: missing end line");
  if (pos != text.size()) {
    return Status::ParseError("manifest: trailing bytes after end line");
  }
  if (!saw_generation || !saw_journal) {
    return Status::ParseError("manifest: missing generation or journal line");
  }
  return manifest;
}

std::string EncodeJournalRecord(const std::string& command) {
  return "r " + std::to_string(command.size()) + " " +
         CrcHex(Crc32(command.data(), command.size())) + " " + command + "\n";
}

JournalReplay ParseJournal(const std::string& text) {
  JournalReplay replay;
  size_t pos = 0;
  while (pos < text.size()) {
    // "r <len> <crc> <payload>\n" — reject on any deviation; a torn tail
    // is expected after a crash, so this is a stop condition, not an
    // error.
    if (text.compare(pos, 2, "r ") != 0) break;
    pos += 2;
    size_t space = text.find(' ', pos);
    if (space == std::string::npos) break;
    uint64_t len = 0;
    if (!ParseU64({text.data() + pos, space - pos}, &len)) break;
    pos = space + 1;
    space = text.find(' ', pos);
    if (space == std::string::npos) break;
    uint32_t crc = 0;
    if (!ParseHex32({text.data() + pos, space - pos}, &crc)) break;
    pos = space + 1;
    if (pos + len + 1 > text.size()) break;
    if (text[pos + len] != '\n') break;
    if (Crc32(text.data() + pos, static_cast<size_t>(len)) != crc) break;
    replay.commands.emplace_back(text.substr(pos, len));
    pos += len + 1;
    replay.valid_bytes = pos;
  }
  return replay;
}

}  // namespace aqv
