/// \file
/// The two text formats of the storage engine.
///
/// **Manifest** — the committed snapshot descriptor, swapped into place
/// atomically (storage/fs.h ReplaceFileAtomic), so it is either the old
/// or the new snapshot in full:
///
///   aqv-manifest v1
///   generation <n>
///   journal <file>
///   const <text>            one per constant, in ConstId intern order
///   pred <name> <arity> e|i one per predicate, in PredId order
///   view <rule>             parseable rule text, ViewSet order
///   query <rule>            one per union-query disjunct
///   rel <pred> <rows> <crc32hex> <file>
///   end <crc32hex>          CRC-32 of every preceding byte
///
/// The constant table is load-bearing, not cosmetic: segment files store
/// raw tagged Values (kSymbolicBase + ConstId), so recovery must re-intern
/// constants in exactly the recorded order for persisted extents to
/// decode. Same for predicates and PredId. The trailing `end` line is
/// defense in depth on top of the atomic swap — a hand-edited or
/// foreign-copied manifest fails closed.
///
/// **Journal** — the append-only mutation log replayed on top of the
/// manifest snapshot: one length-prefixed, checksummed record per
/// acknowledged session mutation:
///
///   r <payload-bytes> <crc32hex> <payload>\n
///
/// Replay parses records until the first torn or corrupt one and ignores
/// everything after it (a crash mid-append tears at most the final
/// record; recovery truncates the tail and continues appending).

#ifndef AQV_STORAGE_MANIFEST_H_
#define AQV_STORAGE_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace aqv {

/// One persisted relation entry.
struct ManifestRelation {
  std::string pred;
  uint64_t rows = 0;
  uint32_t crc = 0;
  std::string file;
};

/// Parsed manifest contents.
struct Manifest {
  uint64_t generation = 0;
  std::string journal_file;
  /// Constant source texts, in ConstId intern order.
  std::vector<std::string> constants;
  struct Pred {
    std::string name;
    int arity = 0;
    bool intensional = false;
  };
  /// Predicates, in PredId order.
  std::vector<Pred> preds;
  /// View definitions as parseable rule text, in ViewSet order.
  std::vector<std::string> view_rules;
  /// The current query's disjuncts as rule text; empty = no query set.
  std::vector<std::string> query_rules;
  std::vector<ManifestRelation> relations;
};

std::string EncodeManifest(const Manifest& manifest);

/// kParseError on any structural violation, bad field, or `end` checksum
/// mismatch.
[[nodiscard]] Result<Manifest> ParseManifest(const std::string& text);

/// Frames one journaled mutation command.
std::string EncodeJournalRecord(const std::string& command);

/// Journal replay: the commands of every intact record in order, plus the
/// byte length of the intact prefix (< text.size() when the tail is torn
/// and must be truncated before further appends).
struct JournalReplay {
  std::vector<std::string> commands;
  uint64_t valid_bytes = 0;
};

JournalReplay ParseJournal(const std::string& text);

}  // namespace aqv

#endif  // AQV_STORAGE_MANIFEST_H_
