#include "storage/segment.h"

#include <cstring>

#include "eval/mmap_store.h"
#include "eval/value.h"
#include "storage/fs.h"

namespace aqv {

namespace {

constexpr char kMagic[8] = {'A', 'Q', 'V', 'S', 'E', 'G', '1', '\0'};
constexpr uint32_t kFlagSorted = 1u << 0;

template <typename T>
void PutLE(std::string* out, size_t offset, T value) {
  std::memcpy(&(*out)[offset], &value, sizeof(T));
}

template <typename T>
T GetLE(const uint8_t* data, size_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

}  // namespace

std::string EncodeSegment(const Relation& rel) {
  int arity = rel.arity();
  size_t rows = rel.size();
  size_t data_bytes = static_cast<size_t>(arity) * rows * sizeof(Value);
  std::string out(kSegmentHeaderSize + data_bytes, '\0');
  std::memcpy(&out[0], kMagic, sizeof(kMagic));
  PutLE<uint32_t>(&out, 8, static_cast<uint32_t>(arity));
  PutLE<uint32_t>(&out, 12, rel.sorted() ? kFlagSorted : 0);
  PutLE<uint64_t>(&out, 16, rows);
  size_t offset = kSegmentHeaderSize;
  for (int c = 0; c < arity; ++c) {
    if (rows > 0) {
      std::memcpy(&out[offset], rel.ColumnData(c), rows * sizeof(Value));
    }
    offset += rows * sizeof(Value);
  }
  PutLE<uint32_t>(&out, 24,
                  Crc32(out.data() + kSegmentHeaderSize, data_bytes));
  return out;
}

Result<SegmentInfo> ParseSegmentHeader(const uint8_t* data, size_t size,
                                       bool verify_checksum) {
  if (size < kSegmentHeaderSize) {
    return Status::ParseError("segment file shorter than its header (" +
                              std::to_string(size) + " bytes)");
  }
  if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("segment file has a bad magic");
  }
  SegmentInfo info;
  uint32_t arity = GetLE<uint32_t>(data, 8);
  uint32_t flags = GetLE<uint32_t>(data, 12);
  info.rows = GetLE<uint64_t>(data, 16);
  info.data_crc = GetLE<uint32_t>(data, 24);
  if (arity < 1 || arity > (1u << 20)) {
    return Status::ParseError("segment arity " + std::to_string(arity) +
                              " out of range");
  }
  info.arity = static_cast<int>(arity);
  info.sorted = (flags & kFlagSorted) != 0;
  uint64_t data_bytes =
      static_cast<uint64_t>(info.arity) * info.rows * sizeof(Value);
  if (size != kSegmentHeaderSize + data_bytes) {
    return Status::ParseError(
        "segment size mismatch: header claims " +
        std::to_string(kSegmentHeaderSize + data_bytes) + " bytes, file has " +
        std::to_string(size));
  }
  if (verify_checksum &&
      Crc32(data + kSegmentHeaderSize, static_cast<size_t>(data_bytes)) !=
          info.data_crc) {
    return Status::ParseError("segment data checksum mismatch");
  }
  return info;
}

Result<Relation> LoadSegment(const std::string& path, PredId pred,
                             uint32_t expected_crc, bool use_mmap,
                             bool verify_checksum) {
  AQV_ASSIGN_OR_RETURN(std::shared_ptr<const MemMap> map, MemMap::Open(path));
  AQV_ASSIGN_OR_RETURN(
      SegmentInfo info,
      ParseSegmentHeader(map->data(), map->size(), verify_checksum));
  if (info.data_crc != expected_crc) {
    return Status::ParseError("segment '" + path +
                              "' does not match its manifest checksum");
  }
  if (use_mmap) {
    return Relation(pred, info.arity,
                    MakeMmapStore(std::move(map), kSegmentHeaderSize,
                                  info.arity, info.rows),
                    info.sorted);
  }
  auto store = MakeColumnarStore(info.arity);
  const Value* base =
      reinterpret_cast<const Value*>(map->data() + kSegmentHeaderSize);
  store->Reserve(info.rows);
  std::vector<Value> row(static_cast<size_t>(info.arity));
  for (uint64_t r = 0; r < info.rows; ++r) {
    for (int c = 0; c < info.arity; ++c) {
      row[static_cast<size_t>(c)] = base[static_cast<size_t>(c) * info.rows + r];
    }
    store->Append(row.data());
  }
  return Relation(pred, info.arity, std::move(store), info.sorted);
}

}  // namespace aqv
