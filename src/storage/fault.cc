#include "storage/fault.h"

#include <atomic>
#include <mutex>

namespace aqv {

namespace {

struct FaultState {
  std::mutex mu;
  bool armed = false;
  bool crashed = false;
  int64_t point_trigger = -1;
  int64_t byte_trigger = -1;
  uint64_t points = 0;
  uint64_t bytes = 0;
  std::string site;
};

FaultState& State() {
  static FaultState* state = new FaultState();
  return *state;
}

/// Fast-path guard: hooks exit immediately while disarmed, so production
/// sessions never take the mutex.
std::atomic<bool>& Enabled() {
  static std::atomic<bool> enabled{false};
  return enabled;
}

}  // namespace

void FaultArm(int64_t point_index, int64_t byte_index) {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.armed = true;
  s.crashed = false;
  s.point_trigger = point_index;
  s.byte_trigger = byte_index;
  s.points = 0;
  s.bytes = 0;
  s.site.clear();
  Enabled().store(true, std::memory_order_release);
}

FaultProbe FaultDisarm() {
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  FaultProbe probe{s.points, s.bytes};
  s.armed = false;
  s.crashed = false;
  Enabled().store(false, std::memory_order_release);
  return probe;
}

bool FaultCrashed() {
  if (!Enabled().load(std::memory_order_acquire)) return false;
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.crashed;
}

std::string FaultCrashSite() {
  if (!Enabled().load(std::memory_order_acquire)) return "";
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.site;
}

bool FaultPoint(const char* name) {
  if (!Enabled().load(std::memory_order_acquire)) return false;
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.armed) return false;
  if (s.crashed) return true;
  if (s.point_trigger >= 0 &&
      s.points == static_cast<uint64_t>(s.point_trigger)) {
    s.crashed = true;
    s.site = name;
    ++s.points;
    return true;
  }
  ++s.points;
  return false;
}

size_t FaultBytes(size_t want) {
  if (!Enabled().load(std::memory_order_acquire)) return want;
  FaultState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  if (!s.armed) return want;
  if (s.crashed) return 0;
  size_t allow = want;
  if (s.byte_trigger >= 0) {
    uint64_t trigger = static_cast<uint64_t>(s.byte_trigger);
    if (s.bytes >= trigger) {
      allow = 0;
    } else if (s.bytes + want > trigger) {
      allow = static_cast<size_t>(trigger - s.bytes);
    }
    if (allow < want) {
      s.crashed = true;
      s.site = "bytes";
    }
  }
  s.bytes += want;
  return allow;
}

}  // namespace aqv
