/// \file
/// The on-disk columnar segment format — one file per persisted relation,
/// designed to be mmap-served without translation:
///
///   offset 0   8 bytes   magic "AQVSEG1\0"
///   offset 8   u32       arity (>= 1)
///   offset 12  u32       flags (bit 0: rows are sorted+deduplicated)
///   offset 16  u64       row count
///   offset 24  u32       CRC-32 of the data section
///   offset 28  36 bytes  zero padding (header is 64 bytes, so the data
///                        section stays 8-byte aligned for direct Value
///                        access)
///   offset 64  data      arity x rows Values, column-major, native
///                        byte order (int64 little-endian on every
///                        supported target)
///
/// Values are stored raw — including symbolic-constant tags
/// (kSymbolicBase + ConstId) — so a segment is only meaningful next to
/// the manifest that pins the catalog's constant-interning order
/// (storage/manifest.h). Segment files are immutable once written:
/// snapshots write new generation-stamped files and the manifest swap
/// publishes them (storage/store.h).

#ifndef AQV_STORAGE_SEGMENT_H_
#define AQV_STORAGE_SEGMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "cq/term.h"
#include "eval/relation.h"
#include "util/status.h"

namespace aqv {

inline constexpr size_t kSegmentHeaderSize = 64;

/// Decoded segment header.
struct SegmentInfo {
  int arity = 0;
  uint64_t rows = 0;
  bool sorted = false;
  uint32_t data_crc = 0;
};

/// Serializes `rel` (arity >= 1) into segment-file bytes.
std::string EncodeSegment(const Relation& rel);

/// Validates the magic, header geometry (header + arity*rows Values ==
/// `size`), and — when `verify_checksum` — the data CRC. kParseError on
/// any mismatch (a torn or foreign file must never be installed).
[[nodiscard]] Result<SegmentInfo> ParseSegmentHeader(const uint8_t* data, size_t size,
                                       bool verify_checksum);

/// Loads the segment at `path` as a Relation for predicate `pred`:
/// mmap-backed (use_mmap — the file pages in lazily and stays on disk) or
/// copied into the in-memory columnar backend. `expected_crc` cross-checks
/// the header CRC against the manifest entry (detecting a wrong-file
/// swap, not just torn bytes).
[[nodiscard]] Result<Relation> LoadSegment(const std::string& path, PredId pred,
                             uint32_t expected_crc, bool use_mmap,
                             bool verify_checksum);

}  // namespace aqv

#endif  // AQV_STORAGE_SEGMENT_H_
