#include "storage/store.h"

#include <cstdio>

#include "eval/relation.h"
#include "storage/fault.h"
#include "storage/manifest.h"
#include "storage/segment.h"

namespace aqv {

namespace {

constexpr char kManifestFile[] = "MANIFEST";

std::string Gen6(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06llu",
                static_cast<unsigned long long>(generation));
  return buf;
}

std::string JournalName(uint64_t generation) {
  return "journal." + Gen6(generation);
}

}  // namespace

Result<std::unique_ptr<SessionStore>> SessionStore::Attach(
    const std::string& dir, const StoreOptions& options) {
  if (dir.empty()) {
    return Status::InvalidArgument("empty database directory path");
  }
  AQV_RETURN_NOT_OK(EnsureDir(dir));
  AQV_ASSIGN_OR_RETURN(DirLock lock, DirLock::Acquire(dir));
  auto store = std::unique_ptr<SessionStore>(
      new SessionStore(dir, options, std::move(lock)));
  if (store->has_manifest()) {
    // Peek at the committed generation so the next snapshot stamps past
    // it. A corrupt manifest surfaces here rather than at first use.
    AQV_ASSIGN_OR_RETURN(std::string text,
                         ReadFile(store->Path(kManifestFile)));
    AQV_ASSIGN_OR_RETURN(Manifest manifest, ParseManifest(text));
    store->generation_ = manifest.generation;
    store->journal_file_ = manifest.journal_file;
  } else {
    store->journal_file_ = JournalName(0);
  }
  return store;
}

bool SessionStore::has_manifest() const {
  return FileExists(Path(kManifestFile));
}

Status SessionStore::Snapshot(const SnapshotInput& input) {
  if (input.catalog == nullptr || input.base == nullptr) {
    return Status::Internal("snapshot input missing catalog or database");
  }
  const Catalog& catalog = *input.catalog;
  uint64_t generation = generation_ + 1;

  Manifest manifest;
  manifest.generation = generation;
  manifest.journal_file = JournalName(generation);
  for (ConstId c = 0; c < catalog.num_constants(); ++c) {
    manifest.constants.push_back(catalog.constant(c).name);
  }
  for (PredId p = 0; p < catalog.num_predicates(); ++p) {
    const PredInfo& info = catalog.pred(p);
    manifest.preds.push_back(Manifest::Pred{
        info.name, info.arity, info.kind == PredKind::kIntensional});
  }
  manifest.view_rules = input.view_rules;
  manifest.query_rules = input.query_rules;

  // Segments first: a crash between here and the manifest swap leaves
  // orphan files of an uncommitted generation, never a committed manifest
  // pointing at missing data.
  for (PredId p : input.base->Predicates()) {
    const Relation* rel = input.base->Find(p);
    if (rel == nullptr || rel->empty()) continue;
    ManifestRelation entry;
    entry.pred = catalog.pred(p).name;
    entry.rows = rel->size();
    if (rel->arity() == 0) {
      entry.file = "-";  // nullary presence needs no segment
      manifest.relations.push_back(std::move(entry));
      continue;
    }
    std::string bytes = EncodeSegment(*rel);
    AQV_ASSIGN_OR_RETURN(
        SegmentInfo info,
        ParseSegmentHeader(reinterpret_cast<const uint8_t*>(bytes.data()),
                           bytes.size(), /*verify_checksum=*/false));
    entry.crc = info.data_crc;
    entry.file = entry.pred + "." + Gen6(generation) + ".seg";
    AQV_RETURN_NOT_OK(
        WriteFileDurable(Path(entry.file), bytes, options_.sync));
    manifest.relations.push_back(std::move(entry));
  }

  // A fresh empty journal, durable before the manifest that names it.
  AQV_RETURN_NOT_OK(
      WriteFileDurable(Path(manifest.journal_file), "", options_.sync));

  // The commit point: everything before this is invisible to recovery,
  // everything after is fully published.
  AQV_RETURN_NOT_OK(ReplaceFileAtomic(Path(kManifestFile),
                                      EncodeManifest(manifest),
                                      options_.sync));

  generation_ = generation;
  journal_file_ = manifest.journal_file;
  journal_records_ = 0;
  journal_bytes_ = 0;
  AQV_ASSIGN_OR_RETURN(AppendFile journal,
                       AppendFile::Open(Path(journal_file_)));
  journal_ = std::move(journal);

  std::vector<std::string> keep;
  keep.push_back(journal_file_);
  for (const ManifestRelation& rel : manifest.relations) {
    if (rel.file != "-") keep.push_back(rel.file);
  }
  return CollectGarbage(keep);
}

Status SessionStore::CollectGarbage(const std::vector<std::string>& keep) {
  if (FaultPoint("gc")) {
    // The commit already happened; dying here only leaves orphans that
    // the next snapshot collects.
    return Status::Internal("injected crash at gc");
  }
  AQV_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(dir_));
  for (const std::string& name : names) {
    bool collectable = name == "MANIFEST.tmp" ||
                       name.rfind("journal.", 0) == 0 ||
                       (name.size() > 4 &&
                        name.compare(name.size() - 4, 4, ".seg") == 0);
    if (!collectable) continue;
    bool kept = false;
    for (const std::string& k : keep) kept = kept || k == name;
    if (!kept) AQV_RETURN_NOT_OK(RemoveFile(Path(name)));
  }
  return Status::OK();
}

Result<RecoveredState> SessionStore::Recover() {
  auto manifest_text = ReadFile(Path(kManifestFile));
  if (!manifest_text.ok()) {
    if (manifest_text.status().code() == StatusCode::kNotFound) {
      return Status::NotFound(
          "no committed database in this directory");
    }
    return manifest_text.status();
  }
  AQV_ASSIGN_OR_RETURN(Manifest manifest, ParseManifest(*manifest_text));

  RecoveredState state;
  state.generation = manifest.generation;
  state.catalog = std::make_unique<Catalog>();
  // Re-intern in recorded order: persisted Values are tagged with ConstId
  // and relations are keyed by PredId, so both id spaces must reproduce
  // exactly.
  for (size_t i = 0; i < manifest.constants.size(); ++i) {
    ConstId id = state.catalog->InternConstant(manifest.constants[i]);
    if (id != static_cast<ConstId>(i)) {
      return Status::ParseError(
          "manifest constant table has a duplicate entry: '" +
          manifest.constants[i] + "'");
    }
  }
  for (size_t i = 0; i < manifest.preds.size(); ++i) {
    const Manifest::Pred& p = manifest.preds[i];
    auto id = state.catalog->GetOrAddPredicate(
        p.name, p.arity,
        p.intensional ? PredKind::kIntensional : PredKind::kExtensional);
    if (!id.ok()) return id.status();
    if (*id != static_cast<PredId>(i)) {
      return Status::ParseError(
          "manifest predicate table has a duplicate entry: '" + p.name + "'");
    }
  }
  state.view_rules = manifest.view_rules;
  state.query_rules = manifest.query_rules;

  state.base = Database(state.catalog.get());
  for (const ManifestRelation& entry : manifest.relations) {
    auto pred = state.catalog->FindPredicate(entry.pred);
    if (!pred.ok()) {
      return Status::ParseError("manifest rel references unknown predicate '" +
                                entry.pred + "'");
    }
    if (entry.file == "-") {
      if (state.catalog->pred(*pred).arity != 0 || entry.rows != 1) {
        return Status::ParseError("bad nullary rel entry for '" + entry.pred +
                                  "'");
      }
      state.base.Add(*pred, {});
      continue;
    }
    AQV_ASSIGN_OR_RETURN(
        Relation rel,
        LoadSegment(Path(entry.file), *pred, entry.crc, options_.use_mmap,
                    options_.verify_checksums));
    if (rel.arity() != state.catalog->pred(*pred).arity) {
      return Status::ParseError("segment arity disagrees with catalog for '" +
                                entry.pred + "'");
    }
    if (rel.size() != entry.rows) {
      return Status::ParseError("segment row count disagrees with manifest "
                                "for '" +
                                entry.pred + "'");
    }
    state.base.Install(std::move(rel));
  }

  // Journal tail: replay intact records, truncate a torn one (the only
  // damage a crash mid-append can do), and keep appending after it.
  std::string journal_text;
  auto journal_read = ReadFile(Path(manifest.journal_file));
  if (journal_read.ok()) {
    journal_text = std::move(*journal_read);
  } else if (journal_read.status().code() != StatusCode::kNotFound) {
    return journal_read.status();
  }
  JournalReplay replay = ParseJournal(journal_text);
  if (replay.valid_bytes < journal_text.size()) {
    AQV_RETURN_NOT_OK(
        TruncateFile(Path(manifest.journal_file), replay.valid_bytes));
  }
  state.journal_commands = std::move(replay.commands);

  generation_ = manifest.generation;
  journal_file_ = manifest.journal_file;
  journal_records_ = state.journal_commands.size();
  journal_bytes_ = replay.valid_bytes;
  AQV_ASSIGN_OR_RETURN(AppendFile journal,
                       AppendFile::Open(Path(journal_file_)));
  journal_ = std::move(journal);
  return state;
}

Status SessionStore::Append(const std::string& command) {
  if (!journal_.has_value() || !journal_->open()) {
    return Status::Internal("journal is not open (snapshot or recover first)");
  }
  std::string record = EncodeJournalRecord(command);
  AQV_RETURN_NOT_OK(journal_->Append(record, options_.sync));
  ++journal_records_;
  journal_bytes_ += record.size();
  return Status::OK();
}

}  // namespace aqv
