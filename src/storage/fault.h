/// \file
/// Crash injection for the storage engine's durability tests. The fs.h
/// writers thread every durable side effect through two hooks here: a
/// *discrete fault point* before each fsync/rename/truncate (FaultPoint)
/// and a *byte budget* inside each write loop (FaultBytes). Tests arm a
/// crash at the Nth point or the Nth written byte; once it fires, the
/// process's storage layer plays dead — every subsequent durable
/// operation fails — modeling a `kill -9` at that exact position. A
/// counting pass (arm with both triggers disabled) reports how many
/// points and bytes a clean run traverses, so the recovery property test
/// can sweep a crash through every position.
///
/// The injector is process-global and disarmed by default; disarmed-state
/// overhead on the hooks is one relaxed atomic load. Production code
/// never arms it.

#ifndef AQV_STORAGE_FAULT_H_
#define AQV_STORAGE_FAULT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace aqv {

/// Counters observed between FaultArm and FaultDisarm: how many discrete
/// fault points were traversed and how many payload bytes were offered to
/// the write loops.
struct FaultProbe {
  uint64_t points = 0;
  uint64_t bytes = 0;
};

/// Arms the injector: the crash fires at discrete fault point
/// `point_index` (0-based) or once cumulative written bytes reach
/// `byte_index`, whichever happens first; pass -1 to disable either
/// trigger (both -1 = pure counting pass). Resets the counters.
void FaultArm(int64_t point_index, int64_t byte_index);

/// Disarms the injector and returns the counters accumulated since
/// FaultArm. Storage I/O behaves normally again afterwards.
FaultProbe FaultDisarm();

/// True when the armed crash has fired (the storage layer is dead).
bool FaultCrashed();

/// The name of the fault point that fired (diagnostics; "bytes" for a
/// byte-budget crash, "" when no crash fired).
std::string FaultCrashSite();

// --- hooks called by storage/fs.cc writers ---------------------------

/// Discrete fault point `name`. Returns true when the write path must
/// fail here (the crash just fired, or fired earlier).
bool FaultPoint(const char* name);

/// Byte-budget gate: a writer about to emit `want` bytes asks how many it
/// may write. Returns `want` when disarmed; a short return means the
/// crash fires mid-write after that many bytes.
size_t FaultBytes(size_t want);

}  // namespace aqv

#endif  // AQV_STORAGE_FAULT_H_
