/// \file
/// Filesystem primitives of the storage engine, with every durable side
/// effect routed through the crash injector (storage/fault.h):
///
///   - WriteFileDurable  whole-file create+write+fsync (segment files,
///                       fresh journals);
///   - ReplaceFileAtomic the commit primitive — write `<path>.tmp`
///                       durably, rename over `<path>`, fsync the
///                       directory. A crash at any point leaves either
///                       the old file or the new one, never a torn mix
///                       (ursadb's DatabaseSnapshot discipline);
///   - AppendFile        a kept-open O_APPEND descriptor for the journal;
///   - DirLock           flock(LOCK_EX) on `<dir>/LOCK` — one attached
///                       session per database directory (ursadb's
///                       DatabaseLock);
///   - Crc32 and small helpers (EnsureDir, ListDir, ReadFile, ...).
///
/// All functions are synchronous and return Status; an injected crash
/// surfaces as kInternal with an "injected crash" message and leaves the
/// storage layer dead until the test disarms it.

#ifndef AQV_STORAGE_FS_H_
#define AQV_STORAGE_FS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace aqv {

/// CRC-32 (IEEE, the zlib polynomial) of `n` bytes, seedable for
/// incremental use.
uint32_t Crc32(const void* data, size_t n, uint32_t seed = 0);

/// Creates `path` as a directory if it does not exist (one level; the
/// parent must exist). Existing directories are fine.
[[nodiscard]] Status EnsureDir(const std::string& path);

bool FileExists(const std::string& path);

/// Regular-file size in bytes.
[[nodiscard]] Result<uint64_t> FileSize(const std::string& path);

/// Entry names in `path` (no "." / ".."), sorted.
[[nodiscard]] Result<std::vector<std::string>> ListDir(const std::string& path);

/// Whole-file read.
[[nodiscard]] Result<std::string> ReadFile(const std::string& path);

/// Unlinks `path`; missing files are OK (idempotent GC).
[[nodiscard]] Status RemoveFile(const std::string& path);

/// Truncates `path` to `size` bytes (journal torn-tail repair).
[[nodiscard]] Status TruncateFile(const std::string& path, uint64_t size);

/// Creates/overwrites `path` with `data` and, when `sync`, fsyncs it
/// before closing. Crash-injectable: the write can tear at any byte, and
/// the fsync can be the crash site.
[[nodiscard]] Status WriteFileDurable(const std::string& path, const std::string& data,
                        bool sync);

/// The atomic commit primitive: writes `<path>.tmp` via WriteFileDurable,
/// renames it over `path`, and (when `sync`) fsyncs the containing
/// directory so the rename itself is durable.
[[nodiscard]] Status ReplaceFileAtomic(const std::string& path, const std::string& data,
                         bool sync);

/// fsyncs directory `dir` (making renames/creates within it durable).
[[nodiscard]] Status FsyncDir(const std::string& dir, bool sync);

/// \brief An exclusive advisory lock on `<dir>/LOCK`: held for the
/// lifetime of the object, released (and the fd closed) on destruction.
/// flock semantics — a second open of the same lock file conflicts even
/// within one process, so each attached store really is exclusive.
class DirLock {
 public:
  /// kResourceExhausted when another session holds the lock.
  [[nodiscard]] static Result<DirLock> Acquire(const std::string& dir);

  DirLock(DirLock&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  DirLock& operator=(DirLock&& other) noexcept;
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;
  ~DirLock() { Release(); }

  void Release();
  bool held() const { return fd_ >= 0; }

 private:
  explicit DirLock(int fd) : fd_(fd) {}
  int fd_ = -1;
};

/// \brief A kept-open append-mode descriptor (the journal). Append is
/// crash-injectable byte by byte; when `sync`, each append is followed by
/// fdatasync so an acknowledged mutation survives a crash.
class AppendFile {
 public:
  /// Opens (creating if needed) `path` for appending.
  [[nodiscard]] static Result<AppendFile> Open(const std::string& path);

  AppendFile(AppendFile&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  AppendFile& operator=(AppendFile&& other) noexcept;
  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;
  ~AppendFile() { Close(); }

  [[nodiscard]] Status Append(const std::string& data, bool sync);
  void Close();
  bool open() const { return fd_ >= 0; }

 private:
  explicit AppendFile(int fd) : fd_(fd) {}
  int fd_ = -1;
};

}  // namespace aqv

#endif  // AQV_STORAGE_FS_H_
