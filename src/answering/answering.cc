#include "answering/answering.h"

#include <utility>

#include "eval/materialize.h"
#include "rewriting/inverse_rules.h"

namespace aqv {

const std::vector<std::string>& AnswerRouteNames() {
  static const std::vector<std::string>* names = new std::vector<std::string>{
      "direct", "complete", "inverse-rules", "cost"};
  return *names;
}

std::string_view AnswerRouteName(AnswerRoute route) {
  switch (route) {
    case AnswerRoute::kDirect:
      return "direct";
    case AnswerRoute::kCompleteRewriting:
      return "complete";
    case AnswerRoute::kInverseRules:
      return "inverse-rules";
    case AnswerRoute::kCostBased:
      return "cost";
  }
  return "unknown";
}

Result<AnswerRoute> AnswerRouteByName(std::string_view name) {
  if (name == "direct") return AnswerRoute::kDirect;
  if (name == "complete") return AnswerRoute::kCompleteRewriting;
  if (name == "inverse-rules") return AnswerRoute::kInverseRules;
  if (name == "cost") return AnswerRoute::kCostBased;
  return Status::NotFound("no answering route named '" + std::string(name) +
                          "'");
}

namespace {

Status ValidateRequest(const AnswerRequest& request) {
  if (request.query.empty()) {
    return Status::InvalidArgument("AnswerRequest.query is empty");
  }
  const Atom& head = request.query.disjuncts[0].head();
  for (const Query& d : request.query.disjuncts) {
    if (d.head().pred != head.pred || d.head().arity() != head.arity()) {
      return Status::InvalidArgument(
          "AnswerRequest.query disjuncts disagree on the head predicate");
    }
  }
  if (request.route == AnswerRoute::kDirect) {
    if (request.base == nullptr) {
      return Status::InvalidArgument(
          "the direct route requires a base database");
    }
    return Status::OK();
  }
  if (request.route == AnswerRoute::kCostBased && request.query.size() != 1) {
    return Status::InvalidArgument(
        "the cost route expects a single-CQ query; use the complete "
        "route with the \"ucq\" engine for unions");
  }
  if (request.views == nullptr) {
    return Status::InvalidArgument("AnswerRequest.views is null");
  }
  if (request.base == nullptr && request.extents == nullptr) {
    return Status::InvalidArgument(
        "view-based routes need a base database or pre-materialized "
        "extents");
  }
  return Status::OK();
}

/// True when no body atom of `q` is a view predicate (the plan touches the
/// base database only — the direct plan's shape).
bool UsesNoViews(const Query& q, const ViewSet& views) {
  for (const Atom& a : q.body()) {
    if (views.FindByPred(a.pred) != nullptr) return false;
  }
  return true;
}

/// A database holding only the relations `u` reads, view extents
/// shadowing base relations — what a partial rewriting (view and base
/// atoms mixed) evaluates over.
Database MergeReferenced(const UnionQuery& u, const Database& extents,
                         const Database& base) {
  Database merged(base.catalog());
  for (const Query& d : u.disjuncts) {
    for (const Atom& a : d.body()) {
      if (merged.Find(a.pred) != nullptr) continue;
      const Relation* src = extents.Find(a.pred);
      if (src == nullptr) src = base.Find(a.pred);
      if (src != nullptr) *merged.GetOrCreate(a.pred) = *src;
    }
  }
  return merged;
}

}  // namespace

Result<AnswerResponse> AnswerQuery(const AnswerRequest& request) {
  AQV_RETURN_NOT_OK(ValidateRequest(request));
  AnswerResponse out;
  out.route = request.route;
  const Query& q0 = request.query.disjuncts[0];

  if (request.route == AnswerRoute::kDirect) {
    AQV_ASSIGN_OR_RETURN(
        out.result, EvaluateUnion(request.query, *request.base, request.eval,
                                  &out.stats.eval));
    out.executed = request.query;
    out.exact = true;
    return out;
  }

  // The extent cache: evaluate the views at most once per request, and not
  // at all when the caller supplies (typically batch-shared) extents.
  Database materialized;
  const Database* extents = request.extents;
  if (extents == nullptr) {
    AQV_ASSIGN_OR_RETURN(
        materialized, MaterializeViews(*request.views, *request.base,
                                       request.eval, &out.stats.materialize));
    extents = &materialized;
  }

  switch (request.route) {
    case AnswerRoute::kCompleteRewriting: {
      out.engine = request.engine;
      RewriteRequest rewrite;
      rewrite.query = request.query;
      rewrite.views = request.views;
      rewrite.options = request.options;
      AQV_ASSIGN_OR_RETURN(RewriteResponse resp,
                           RunEngine(request.engine, rewrite));
      out.stats.rewrite = resp.stats;
      out.executed = std::move(resp.rewritings);
      out.exact = resp.equivalent_exists;
      out.complete = true;
      for (const Query& d : out.executed.disjuncts) {
        if (!UsesOnlyViews(d, *request.views)) out.complete = false;
      }
      if (out.complete) {
        AQV_ASSIGN_OR_RETURN(
            out.result, EvaluateRewritingUnion(q0, out.executed, *extents,
                                               request.eval,
                                               &out.stats.eval));
      } else if (request.base != nullptr) {
        // Partial rewritings (allow_base_atoms) read base relations too.
        Database merged =
            MergeReferenced(out.executed, *extents, *request.base);
        AQV_ASSIGN_OR_RETURN(
            out.result, EvaluateRewritingUnion(q0, out.executed, merged,
                                               request.eval,
                                               &out.stats.eval));
      } else {
        return Status::InvalidArgument(
            "engine '" + request.engine +
            "' produced a partial rewriting (base atoms), which needs the "
            "base database; this request supplied only view extents");
      }
      return out;
    }

    case AnswerRoute::kInverseRules: {
      AQV_ASSIGN_OR_RETURN(InverseRuleSet rules,
                           BuildInverseRules(*request.views));
      AQV_ASSIGN_OR_RETURN(
          out.result,
          CertainAnswersViaInverseRules(request.query, rules, *extents,
                                        request.eval, &out.stats.eval));
      out.complete = true;
      return out;
    }

    case AnswerRoute::kCostBased: {
      PlannerOptions popts = request.planner;
      popts.engine = request.options;
      if (request.base == nullptr) popts.include_direct_plan = false;
      ExtentStats base_stats;
      if (request.base != nullptr) {
        base_stats = ExtentStats::FromDatabase(*request.base);
      }
      AQV_ASSIGN_OR_RETURN(
          PlannerResult plans,
          ChooseBestPlan(q0, *request.views,
                         ExtentStats::FromDatabase(*extents), base_stats,
                         popts));
      out.stats.rewrite = plans.stats;
      // Without a base database only complete plans are executable.
      int chosen = plans.best;
      if (request.base == nullptr) {
        chosen = -1;
        for (int i = 0; i < static_cast<int>(plans.plans.size()); ++i) {
          if (!plans.plans[i].complete) continue;
          if (chosen < 0 || plans.plans[i].estimated_cost <
                                plans.plans[chosen].estimated_cost) {
            chosen = i;
          }
        }
      }
      if (chosen < 0) {
        return Status::InvalidArgument(
            "no executable plan: the query has no equivalent complete "
            "rewriting over these views" +
            std::string(request.base == nullptr
                            ? " and no base database was supplied"
                            : ""));
      }
      plans.best = chosen;
      const PlanChoice& plan = plans.plans[chosen];
      // Complete plans read extents; the direct plan reads the base;
      // partial plans (view and base atoms mixed) need both merged.
      Result<Relation> answer = Status::Internal("unset");
      if (plan.complete) {
        answer = EvaluateQuery(plan.rewriting, *extents, request.eval,
                               &out.stats.eval);
      } else if (UsesNoViews(plan.rewriting, *request.views)) {
        answer = EvaluateQuery(plan.rewriting, *request.base, request.eval,
                               &out.stats.eval);
      } else {
        UnionQuery plan_union;
        plan_union.disjuncts.push_back(plan.rewriting);
        Database merged =
            MergeReferenced(plan_union, *extents, *request.base);
        answer = EvaluateQuery(plan.rewriting, merged, request.eval,
                               &out.stats.eval);
      }
      AQV_ASSIGN_OR_RETURN(out.result, std::move(answer));
      out.engine = plan.engine;
      out.complete = plan.complete;
      out.exact = true;
      out.executed.disjuncts.push_back(plan.rewriting);
      out.plans = std::move(plans);
      return out;
    }

    case AnswerRoute::kDirect:
      break;  // handled above
  }
  return Status::Internal("unhandled AnswerRoute");
}

}  // namespace aqv
