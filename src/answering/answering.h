/// \file
/// Umbrella header of the `answering` module: the end-to-end
/// answering-queries-using-views pipeline the rest of the repository
/// builds toward. A single call — AnswerQuery — takes a query, the
/// available views, and a base database (or pre-materialized view
/// extents), and produces the answer *relation*, not just a rewriting:
/// it materializes/caches view extents (eval/materialize.h), obtains a
/// rewriting from any registered engine by name (rewriting/engine.h) or a
/// cost-ranked plan across all of them (rewriting/planner.h), executes
/// the winner with the hash-join evaluator (eval/evaluator.h), and also
/// exposes the inverse-rules certain-answer route (eval/certain.h) behind
/// the same request/response API.
///
/// Route semantics (LMSS95 §4 / Duschka-Genesereth):
///   kDirect             q over the base database — ground truth, needs
///                       the base.
///   kCompleteRewriting  the named engine's rewriting union over view
///                       extents. For bucket/minicon this evaluates the
///                       maximally-contained rewriting: the certain
///                       answers under sound views. For lmss/ucq it
///                       evaluates equivalent rewritings (exact answers)
///                       when one exists, else an empty union — which is
///                       still sound (the empty set of certain answers).
///                       Partial rewritings (allow_base_atoms) evaluate
///                       over extents merged with the base relations they
///                       read, and require the base to be supplied.
///   kInverseRules       certain answers by inverting the views into a
///                       Skolem datalog program — engine-independent; the
///                       route-equivalence oracle for the union route.
///   kCostBased          ChooseBestPlan across the registered engines
///                       plus the direct plan, executing the cheapest
///                       (exact answers; plans are equivalent rewritings;
///                       see PlannerOptions::engines for the default list).
///
/// When an equivalent rewriting exists and extents are materialized
/// exactly from the base, all four routes return the same relation — the
/// invariant tests/test_answering.cc holds every engine to.

#ifndef AQV_ANSWERING_ANSWERING_H_
#define AQV_ANSWERING_ANSWERING_H_

#include <string>
#include <string_view>
#include <vector>

#include "cq/query.h"
#include "eval/certain.h"
#include "eval/database.h"
#include "eval/evaluator.h"
#include "eval/relation.h"
#include "rewriting/engine.h"
#include "rewriting/planner.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// How an AnswerRequest turns views + data into answers. See the \file
/// comment for the semantics of each route.
enum class AnswerRoute {
  kDirect,
  kCompleteRewriting,
  kInverseRules,
  kCostBased,
};

/// Stable registry names: {"direct", "complete", "inverse-rules", "cost"}.
const std::vector<std::string>& AnswerRouteNames();

/// The registry name of `route`.
std::string_view AnswerRouteName(AnswerRoute route);

/// The route registered under `name` (kNotFound otherwise).
[[nodiscard]] Result<AnswerRoute> AnswerRouteByName(std::string_view name);

/// \brief One answering problem: which query over which views and data,
/// answered how. Pointees (views, databases, and the Catalog behind them)
/// must outlive the call — and, when submitted to the service, the
/// response collection.
struct AnswerRequest {
  /// The query (a union; singleton for the CQ engines and kCostBased).
  UnionQuery query;
  const ViewSet* views = nullptr;
  /// The hidden base database. Required for kDirect and for executing
  /// partial/direct plans under kCostBased; optional otherwise when
  /// `extents` is supplied.
  const Database* base = nullptr;
  /// Pre-materialized view extents — the per-scenario extent cache. When
  /// null, extents are materialized from `base` on demand.
  const Database* extents = nullptr;
  /// Engine registry name (kCompleteRewriting; EngineNames()).
  std::string engine = "minicon";
  AnswerRoute route = AnswerRoute::kCompleteRewriting;
  /// Engine knobs + the shared containment oracle.
  EngineOptions options;
  EvalOptions eval;
  /// kCostBased knobs. `planner.engine` is overwritten with `options`, so
  /// the oracle and budgets are configured in exactly one place.
  PlannerOptions planner;
};

/// Counters of one answering call, stage by stage.
struct AnswerStats {
  /// Materializing extents from the base (zeros when cached extents were
  /// supplied).
  EvalStats materialize;
  /// Executing the chosen plan / rewriting / datalog program.
  EvalStats eval;
  /// The rewriting search (kCompleteRewriting: the named engine;
  /// kCostBased: aggregate across all engines consulted).
  RewriteStats rewrite;
};

/// Outcome of one answering call.
struct AnswerResponse {
  /// The answer relation, typed by the query head.
  Relation result;
  AnswerRoute route = AnswerRoute::kCompleteRewriting;
  /// Engine echo (empty for kDirect / kInverseRules).
  std::string engine;
  /// What was actually evaluated: the rewriting union (complete route),
  /// the winning plan (cost route), or the query itself (direct). Empty
  /// for kInverseRules, whose program is not a UCQ.
  UnionQuery executed;
  /// True when `executed` reads only view extents.
  bool complete = false;
  /// True when `result` is exactly q(base): the executed plan is an
  /// equivalent rewriting (or the direct query). False means `result` is
  /// the certain-answer under-approximation.
  bool exact = false;
  /// kCostBased: every plan considered, with `chosen` = PlannerResult
  /// best index.
  PlannerResult plans;
  AnswerStats stats;
};

/// \brief Runs the full answering pipeline for one request. See the \file
/// comment; errors follow the usual codes (kInvalidArgument for
/// missing/mismatched inputs, engine and evaluator errors propagate).
[[nodiscard]] Result<AnswerResponse> AnswerQuery(const AnswerRequest& request);

}  // namespace aqv

#endif  // AQV_ANSWERING_ANSWERING_H_
