/// \file
/// Scenario-family generator: seeded, parameterized synthesis of realistic
/// LAV data-integration topologies at soak scale. Where scenarios.h
/// packages three hand-tiled problems, GenerateScenario emits arbitrarily
/// many — a mediated schema of binary relations, a chain query over a core
/// of that schema, and tens to hundreds of overlapping source views tiled
/// as chains, stars, and snowflakes, with controllable schema coverage,
/// source redundancy, noise-view fraction, multi-tenant catalogs, and
/// Zipf-skewed hidden base data. Every generated scenario is a plain
/// workload::Scenario, so the whole existing stack (engines, answering
/// routes, frontend replay, the service) consumes it unchanged; the
/// differential soak harness (frontend/differential.h, tools/soak.cc)
/// is its primary customer. Invariant: generation is a pure function of
/// the spec — same spec, byte-identical scenario and script.

#ifndef AQV_WORKLOAD_GENERATOR_H_
#define AQV_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>

#include "util/status.h"
#include "workload/scenarios.h"

namespace aqv {

/// Parameters of one generated LAV scenario. Defaults describe a small,
/// fast instance; the soak driver randomizes these within ranges.
struct GeneratedScenarioSpec {
  /// Master seed; the single source of all randomness.
  uint64_t seed = 1;

  // --- mediated schema -----------------------------------------------
  /// Binary relations per tenant ("p0".."p<n-1>", tenant-prefixed when
  /// num_tenants > 1). The paper-scale band is 10-50.
  int num_predicates = 12;
  /// Independent tenant sub-schemas sharing one catalog. The query (and
  /// its views) live in tenant 0; further tenants contribute background
  /// views whose predicates are disjoint from the query's.
  int num_tenants = 1;

  // --- query ----------------------------------------------------------
  /// Chain length of the query q(X0, Xn) :- c0(X0,X1), ..., over the
  /// first min(query_atoms, num_predicates) predicates of tenant 0
  /// (predicates repeat cyclically past that).
  int query_atoms = 3;

  // --- source views ---------------------------------------------------
  /// Total views across all tenants. The soak band is 50-500.
  int num_views = 60;
  /// Tiling mix: each non-mirror view draws its shape from these weights
  /// (normalized; all zero is invalid).
  double chain_weight = 1.0;
  double star_weight = 1.0;
  double snowflake_weight = 1.0;
  /// Body size band of generated views.
  int min_view_atoms = 1;
  int max_view_atoms = 3;
  /// Fraction of each tenant's schema the views may draw atoms from
  /// (query-core predicates order first, so low coverage concentrates
  /// sources on the query).
  double coverage = 1.0;
  /// Probability that a view re-tiles an earlier view's predicate shape
  /// under a fresh name and head — overlapping redundant sources.
  double redundancy = 0.15;
  /// Probability that a view's body avoids the query's predicates
  /// entirely (a distractor source the rewriter must prune).
  double noise_view_fraction = 0.1;
  /// Probability a body variable is exposed in a generated view's head
  /// (at least one is always kept).
  double head_keep_prob = 0.6;
  /// When true (default), the first views emitted are full-identity
  /// mirrors of the query's predicates — guaranteeing an equivalent
  /// rewriting exists, so all four answering routes agree exactly (the
  /// route-equivalence property the differential harness leans on).
  bool guarantee_equivalent = true;

  // --- hidden base data -----------------------------------------------
  /// Tuples per referenced predicate (plus a few planted query-satisfying
  /// chains so answers are non-trivial).
  int facts_per_predicate = 25;
  /// Constants are drawn from [0, domain_size).
  int domain_size = 40;
  /// Zipf skew of the fact distribution (0 = uniform).
  double zipf_skew = 0.8;

  /// Rejects out-of-band parameters (kInvalidArgument with the reason).
  [[nodiscard]] Status Validate() const;
};

/// \brief Generates one scenario from `spec`: registers the mediated
/// schema, synthesizes the query and the tiled view family, and fills the
/// hidden base database. The result passes Scenario round-trips
/// (frontend/replay.h ScriptFromScenario) and, when
/// `spec.guarantee_equivalent`, satisfies route equivalence
/// (direct ≡ complete ≡ inverse-rules ≡ cost) for every engine.
[[nodiscard]] Result<Scenario> GenerateScenario(const GeneratedScenarioSpec& spec);

}  // namespace aqv

#endif  // AQV_WORKLOAD_GENERATOR_H_
