#ifndef AQV_WORKLOAD_DATAGEN_H_
#define AQV_WORKLOAD_DATAGEN_H_

#include <vector>

#include "cq/catalog.h"
#include "eval/database.h"
#include "util/rng.h"

namespace aqv {

/// Parameters for synthetic base data.
struct DataGenSpec {
  int tuples_per_relation = 1000;
  /// Values are drawn from [0, domain_size).
  int domain_size = 100;
  /// Zipf skew (0 = uniform). Skewed columns create heavy join fan-out.
  double zipf_skew = 0.0;
};

/// Fills one relation per predicate in `preds` with random tuples.
Database MakeRandomDatabase(const Catalog* catalog,
                            const std::vector<PredId>& preds, Rng* rng,
                            const DataGenSpec& spec);

/// All extensional predicates currently declared in `catalog`.
std::vector<PredId> ExtensionalPredicates(const Catalog& catalog);

}  // namespace aqv

#endif  // AQV_WORKLOAD_DATAGEN_H_
