#include "workload/generator.h"

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "util/rng.h"
#include "workload/datagen.h"

namespace aqv {

namespace {

enum Tiling { kChain = 0, kStar = 1, kSnowflake = 2 };

/// The regenerable skeleton of one tiled view: its shape and the exact
/// predicate sequence. Redundant views re-render a stored shape under a
/// fresh name and head, which is how overlapping sources are made.
struct Shape {
  Tiling tiling = kChain;
  std::vector<PredId> preds;
};

/// Renders `shape` as a view body + head named `name`. Variable naming is
/// positional, so two renderings of one shape are isomorphic (their heads
/// may differ — head exposure is resampled per view).
Result<Query> RenderShape(Catalog* catalog, Rng* rng, const Shape& shape,
                          const std::string& name, double head_keep_prob) {
  Query body(catalog);
  std::vector<VarId> vars;
  int n = static_cast<int>(shape.preds.size());
  switch (shape.tiling) {
    case kChain: {
      for (int i = 0; i <= n; ++i) {
        vars.push_back(body.AddVariable("Y" + std::to_string(i)));
      }
      for (int i = 0; i < n; ++i) {
        body.AddBodyAtom(Atom(shape.preds[i],
                              {Term::Var(vars[i]), Term::Var(vars[i + 1])}));
      }
      break;
    }
    case kStar: {
      VarId center = body.AddVariable("Y0");
      vars.push_back(center);
      for (int i = 0; i < n; ++i) {
        VarId leaf = body.AddVariable("Y" + std::to_string(i + 1));
        vars.push_back(leaf);
        body.AddBodyAtom(Atom(shape.preds[i],
                              {Term::Var(center), Term::Var(leaf)}));
      }
      break;
    }
    case kSnowflake: {
      // A hub of ceil(n/2) rays; the remaining atoms extend the rays one
      // hop outward (dimension hierarchies off a fact hub).
      int rays = (n + 1) / 2;
      VarId center = body.AddVariable("Y0");
      vars.push_back(center);
      std::vector<VarId> ray_vars;
      for (int i = 0; i < rays; ++i) {
        VarId leaf = body.AddVariable("Y" + std::to_string(i + 1));
        vars.push_back(leaf);
        ray_vars.push_back(leaf);
        body.AddBodyAtom(Atom(shape.preds[i],
                              {Term::Var(center), Term::Var(leaf)}));
      }
      for (int i = rays; i < n; ++i) {
        VarId from = ray_vars[(i - rays) % ray_vars.size()];
        VarId out = body.AddVariable("Z" + std::to_string(i - rays));
        vars.push_back(out);
        body.AddBodyAtom(Atom(shape.preds[i],
                              {Term::Var(from), Term::Var(out)}));
      }
      break;
    }
  }
  // Head: each body variable exposed with head_keep_prob, never none.
  std::vector<VarId> head_vars;
  for (VarId v : vars) {
    if (rng->NextBool(head_keep_prob)) head_vars.push_back(v);
  }
  if (head_vars.empty()) head_vars.push_back(vars.front());
  std::vector<Term> args;
  args.reserve(head_vars.size());
  for (VarId v : head_vars) args.push_back(Term::Var(v));
  AQV_ASSIGN_OR_RETURN(
      PredId pred,
      catalog->GetOrAddPredicate(name, static_cast<int>(args.size()),
                                 PredKind::kIntensional));
  body.set_head(Atom(pred, std::move(args)));
  AQV_RETURN_NOT_OK(body.Validate());
  return body;
}

std::string FormatFraction(double v) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

Status GeneratedScenarioSpec::Validate() const {
  if (num_predicates < 2 || num_predicates > 1000) {
    return Status::InvalidArgument("num_predicates must be in [2, 1000]");
  }
  if (num_tenants < 1 || num_tenants > 16) {
    return Status::InvalidArgument("num_tenants must be in [1, 16]");
  }
  if (query_atoms < 1 || query_atoms > 8) {
    return Status::InvalidArgument("query_atoms must be in [1, 8]");
  }
  if (num_views < 1 || num_views > 5000) {
    return Status::InvalidArgument("num_views must be in [1, 5000]");
  }
  if (chain_weight < 0 || star_weight < 0 || snowflake_weight < 0 ||
      chain_weight + star_weight + snowflake_weight <= 0) {
    return Status::InvalidArgument(
        "tiling weights must be non-negative with a positive sum");
  }
  if (min_view_atoms < 1 || min_view_atoms > max_view_atoms ||
      max_view_atoms > 8) {
    return Status::InvalidArgument(
        "view atom band must satisfy 1 <= min <= max <= 8");
  }
  if (coverage <= 0.0 || coverage > 1.0) {
    return Status::InvalidArgument("coverage must be in (0, 1]");
  }
  for (double frac : {redundancy, noise_view_fraction, head_keep_prob}) {
    if (frac < 0.0 || frac > 1.0) {
      return Status::InvalidArgument(
          "redundancy/noise/head_keep fractions must be in [0, 1]");
    }
  }
  if (guarantee_equivalent &&
      num_views < std::min(query_atoms, num_predicates)) {
    return Status::InvalidArgument(
        "guarantee_equivalent needs num_views >= the query's distinct "
        "predicate count (the mirror views)");
  }
  if (facts_per_predicate < 0) {
    return Status::InvalidArgument("facts_per_predicate must be >= 0");
  }
  if (domain_size < 1) {
    return Status::InvalidArgument("domain_size must be >= 1");
  }
  if (zipf_skew < 0.0) {
    return Status::InvalidArgument("zipf_skew must be >= 0");
  }
  return Status::OK();
}

Result<Scenario> GenerateScenario(const GeneratedScenarioSpec& spec) {
  AQV_RETURN_NOT_OK(spec.Validate());
  Rng rng(spec.seed);

  Scenario s;
  s.catalog = std::make_unique<Catalog>();
  Catalog* cat = s.catalog.get();

  // Mediated schema: num_predicates binary relations per tenant.
  std::vector<std::vector<PredId>> tenant_preds(spec.num_tenants);
  for (int t = 0; t < spec.num_tenants; ++t) {
    std::string prefix =
        spec.num_tenants == 1 ? "p" : "t" + std::to_string(t) + "_p";
    for (int i = 0; i < spec.num_predicates; ++i) {
      AQV_ASSIGN_OR_RETURN(
          PredId p, cat->GetOrAddPredicate(prefix + std::to_string(i), 2));
      tenant_preds[t].push_back(p);
    }
  }

  // The query: a chain over tenant 0's core predicates.
  std::vector<PredId> core;
  for (int i = 0; i < spec.query_atoms; ++i) {
    core.push_back(tenant_preds[0][i % spec.num_predicates]);
  }
  {
    Query q(cat);
    std::vector<VarId> vars;
    for (int i = 0; i <= spec.query_atoms; ++i) {
      vars.push_back(q.AddVariable("X" + std::to_string(i)));
    }
    for (int i = 0; i < spec.query_atoms; ++i) {
      q.AddBodyAtom(
          Atom(core[i], {Term::Var(vars[i]), Term::Var(vars[i + 1])}));
    }
    AQV_ASSIGN_OR_RETURN(
        PredId head, cat->GetOrAddPredicate("q", 2, PredKind::kIntensional));
    q.set_head(Atom(head, {Term::Var(vars.front()), Term::Var(vars.back())}));
    AQV_RETURN_NOT_OK(q.Validate());
    s.query = std::move(q);
  }
  std::set<PredId> core_set(core.begin(), core.end());

  // Views. Mirrors first (when guaranteed): one full-identity view per
  // distinct query predicate, which plants an equivalent rewriting.
  int view_index = 0;
  if (spec.guarantee_equivalent) {
    std::set<PredId> seen;
    for (PredId p : core) {
      if (!seen.insert(p).second) continue;
      Query body(cat);
      VarId a = body.AddVariable("Y0");
      VarId b = body.AddVariable("Y1");
      body.AddBodyAtom(Atom(p, {Term::Var(a), Term::Var(b)}));
      AQV_ASSIGN_OR_RETURN(
          PredId head,
          cat->GetOrAddPredicate("v" + std::to_string(view_index), 2,
                                 PredKind::kIntensional));
      body.set_head(Atom(head, {Term::Var(a), Term::Var(b)}));
      AQV_RETURN_NOT_OK(body.Validate());
      AQV_RETURN_NOT_OK(s.views.Add(std::move(body)));
      ++view_index;
    }
  }

  const double weight_sum =
      spec.chain_weight + spec.star_weight + spec.snowflake_weight;
  const int pool_size = std::max(
      1, static_cast<int>(spec.coverage * spec.num_predicates + 0.999));
  std::vector<Shape> shapes;
  while (view_index < spec.num_views) {
    Shape shape;
    bool redundant = !shapes.empty() && rng.NextBool(spec.redundancy);
    if (redundant) {
      shape = shapes[rng.NextBounded(shapes.size())];
    } else {
      // Tenant: the query's tenant most of the time; other tenants supply
      // background catalogs whose predicates never touch the query.
      int tenant = 0;
      if (spec.num_tenants > 1 && !rng.NextBool(0.7)) {
        tenant = 1 + static_cast<int>(rng.NextBounded(spec.num_tenants - 1));
      }
      // Predicate pool under the coverage knob; a noise view on tenant 0
      // draws only from predicates outside the query core.
      std::vector<PredId> pool(tenant_preds[tenant].begin(),
                               tenant_preds[tenant].begin() + pool_size);
      if (tenant == 0 && rng.NextBool(spec.noise_view_fraction)) {
        std::vector<PredId> off_core;
        for (PredId p : tenant_preds[0]) {
          if (core_set.count(p) == 0) off_core.push_back(p);
        }
        if (!off_core.empty()) pool = std::move(off_core);
      }
      double pick = rng.NextDouble() * weight_sum;
      shape.tiling = pick < spec.chain_weight ? kChain
                     : pick < spec.chain_weight + spec.star_weight
                         ? kStar
                         : kSnowflake;
      int atoms = static_cast<int>(
          rng.NextInRange(spec.min_view_atoms, spec.max_view_atoms));
      for (int i = 0; i < atoms; ++i) {
        shape.preds.push_back(pool[rng.NextBounded(pool.size())]);
      }
      shapes.push_back(shape);
    }
    AQV_ASSIGN_OR_RETURN(
        Query view,
        RenderShape(cat, &rng, shape, "v" + std::to_string(view_index),
                    spec.head_keep_prob));
    AQV_RETURN_NOT_OK(s.views.Add(std::move(view)));
    ++view_index;
  }

  // Hidden base data over every referenced extensional predicate:
  // Zipf-skewed random tuples plus a few planted query-satisfying chains
  // so generated probes have non-trivial answers.
  std::set<PredId> referenced(core.begin(), core.end());
  for (const View& v : s.views.views()) {
    for (const Atom& a : v.definition.body()) referenced.insert(a.pred);
  }
  std::vector<PredId> fact_preds(referenced.begin(), referenced.end());
  DataGenSpec data;
  data.tuples_per_relation = spec.facts_per_predicate;
  data.domain_size = spec.domain_size;
  data.zipf_skew = spec.zipf_skew;
  s.base = MakeRandomDatabase(cat, fact_preds, &rng, data);
  int plants = std::max(2, spec.facts_per_predicate / 5);
  for (int g = 0; g < plants; ++g) {
    std::vector<Value> nodes;
    for (int i = 0; i <= spec.query_atoms; ++i) {
      nodes.push_back(static_cast<Value>(rng.NextBounded(spec.domain_size)));
    }
    for (int i = 0; i < spec.query_atoms; ++i) {
      s.base.Add(core[i], {nodes[i], nodes[i + 1]});
    }
  }
  s.base.DedupAll();

  s.description =
      "generated LAV topology: seed=" + std::to_string(spec.seed) +
      " preds=" + std::to_string(spec.num_predicates) +
      " views=" + std::to_string(spec.num_views) +
      " tenants=" + std::to_string(spec.num_tenants) +
      " query_atoms=" + std::to_string(spec.query_atoms) +
      " coverage=" + FormatFraction(spec.coverage) +
      " redundancy=" + FormatFraction(spec.redundancy) +
      " noise=" + FormatFraction(spec.noise_view_fraction) +
      " zipf=" + FormatFraction(spec.zipf_skew) +
      (spec.guarantee_equivalent ? " mirrors=yes" : " mirrors=no");
  return s;
}

}  // namespace aqv
