/// \file
/// Umbrella header of the `workload` module: parameterized generators for
/// the query/view families the benchmarks measure — chain queries and chain
/// views (figure family F1), star queries (F2), and random CQs with
/// configurable DistinguishedPolicy head exposure. datagen.h adds random
/// database instances and scenarios.h packages full LAV problems (schema +
/// query + views + hidden base data). Invariants: every generator is a pure
/// function of its spec and the caller's Rng — same seed, same workload —
/// and generated artifacts always pass their own Validate().

#ifndef AQV_WORKLOAD_GENERATORS_H_
#define AQV_WORKLOAD_GENERATORS_H_

#include <string>
#include <string_view>

#include "cq/catalog.h"
#include "cq/query.h"
#include "util/rng.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// Which variables a generated view exposes in its head.
enum class DistinguishedPolicy {
  kEnds,    ///< first and last chain variable (classic chain-view setup)
  kAll,     ///< every variable (fully exposed views)
  kRandom,  ///< each variable kept with `random_keep_prob`
};

// ---------------------------------------------------------------------------
// Chain workloads (MiniCon experimental grid, figure family F1).
// ---------------------------------------------------------------------------

/// Parameters of a chain query q(X0, Xn) :- r1(X0,X1), ..., rn(Xn-1,Xn).
struct ChainQuerySpec {
  int length = 4;
  /// Distinct predicates r1..rn (true) or a single self-join predicate.
  bool distinct_predicates = true;
  std::string pred_prefix = "r";
  std::string head_name = "q";
};

/// Builds the chain query; predicates are registered in `catalog`.
[[nodiscard]] Result<Query> MakeChainQuery(Catalog* catalog, const ChainQuerySpec& spec);

/// Parameters for a random family of sub-chain views over the same
/// predicates as a ChainQuerySpec.
struct ChainViewSpec {
  ChainQuerySpec chain;  ///< the underlying chain (must match the query's)
  int num_views = 10;
  int min_length = 1;
  int max_length = 3;
  DistinguishedPolicy policy = DistinguishedPolicy::kEnds;
  double random_keep_prob = 0.5;
  std::string view_prefix = "v";
};

/// Builds `num_views` random sub-chain views v_i(...) :- r_s..r_{s+l-1}.
[[nodiscard]] Result<ViewSet> MakeChainViews(Catalog* catalog, Rng* rng,
                               const ChainViewSpec& spec);

// ---------------------------------------------------------------------------
// Star workloads (F2).
// ---------------------------------------------------------------------------

/// q(X1..Xk) :- r1(X0,X1), ..., rk(X0,Xk): a center joined to k rays.
struct StarQuerySpec {
  int rays = 4;
  bool distinct_predicates = true;
  bool distinguish_center = false;
  std::string pred_prefix = "s";
  std::string head_name = "q";
};

[[nodiscard]] Result<Query> MakeStarQuery(Catalog* catalog, const StarQuerySpec& spec);

/// Views covering random subsets of rays.
struct StarViewSpec {
  StarQuerySpec star;
  int num_views = 10;
  int min_rays = 1;
  int max_rays = 3;
  DistinguishedPolicy policy = DistinguishedPolicy::kAll;
  double random_keep_prob = 0.5;
  std::string view_prefix = "v";
};

[[nodiscard]] Result<ViewSet> MakeStarViews(Catalog* catalog, Rng* rng,
                              const StarViewSpec& spec);

// ---------------------------------------------------------------------------
// Complete (clique) workloads (F3).
// ---------------------------------------------------------------------------

/// q(X1..Xn) :- r_ij(Xi,Xj) for all i<j: every pair of variables joined.
struct CompleteQuerySpec {
  int nodes = 4;
  bool distinct_predicates = true;
  std::string pred_prefix = "e";
  std::string head_name = "q";
};

[[nodiscard]] Result<Query> MakeCompleteQuery(Catalog* catalog,
                                const CompleteQuerySpec& spec);

/// Views over random subsets of the clique's edges.
struct CompleteViewSpec {
  CompleteQuerySpec complete;
  int num_views = 10;
  int min_edges = 1;
  int max_edges = 3;
  DistinguishedPolicy policy = DistinguishedPolicy::kAll;
  double random_keep_prob = 0.5;
  std::string view_prefix = "v";
};

[[nodiscard]] Result<ViewSet> MakeCompleteViews(Catalog* catalog, Rng* rng,
                                  const CompleteViewSpec& spec);

// ---------------------------------------------------------------------------
// Random CQs (T1 property sweeps, F6 containment microbenches).
// ---------------------------------------------------------------------------

struct RandomQuerySpec {
  int num_subgoals = 4;
  int num_predicates = 3;
  int pred_arity = 2;
  int num_vars = 4;
  int head_arity = 2;
  double constant_prob = 0.0;
  int constant_pool = 3;
  std::string pred_prefix = "p";
  std::string head_name = "q";
};

/// A random CQ: subgoals over random predicates with uniformly drawn
/// variable (or constant) arguments; the head projects `head_arity` randomly
/// chosen body variables. Always safe by construction.
[[nodiscard]] Result<Query> MakeRandomQuery(Catalog* catalog, Rng* rng,
                              const RandomQuerySpec& spec);

/// `num_views` random views over the same predicate space.
[[nodiscard]] Result<ViewSet> MakeRandomViews(Catalog* catalog, Rng* rng,
                                const RandomQuerySpec& base, int num_views,
                                std::string_view view_prefix = "v");

}  // namespace aqv

#endif  // AQV_WORKLOAD_GENERATORS_H_
