/// \file
/// Scenario registry and the workload→engine hook: every packaged LAV
/// scenario (scenarios.h) is constructible by name, and any scenario can
/// drive any rewriting strategy by engine name through the unified
/// RewritingEngine layer (rewriting/engine.h). Benches, tests, and tools
/// iterate ScenarioNames() × EngineNames() instead of hard-wiring
/// (scenario, algorithm) pairs.

#ifndef AQV_WORKLOAD_REGISTRY_H_
#define AQV_WORKLOAD_REGISTRY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rewriting/engine.h"
#include "util/status.h"
#include "workload/scenarios.h"

namespace aqv {

/// Names of all registered scenarios, in a stable order:
/// {"travel", "warehouse", "bibliography"}.
const std::vector<std::string>& ScenarioNames();

/// Builds the scenario registered under `name` (kNotFound otherwise).
Result<Scenario> MakeScenarioByName(std::string_view name, uint64_t seed,
                                    int db_size);

/// \brief Runs one engine on one scenario: wraps the scenario's query and
/// views into a RewriteRequest (singleton union; the ucq engine accepts it
/// too) and dispatches through the engine registry. `options.oracle`, when
/// set, is shared across calls — the cross-engine cache reuse the bench
/// measures.
Result<RewriteResponse> RewriteScenarioWithEngine(const Scenario& scenario,
                                                  std::string_view engine_name,
                                                  const EngineOptions& options);

}  // namespace aqv

#endif  // AQV_WORKLOAD_REGISTRY_H_
