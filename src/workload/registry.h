/// \file
/// Scenario registry and the workload→engine hook: every packaged LAV
/// scenario (scenarios.h) is constructible by name, and any scenario can
/// drive any rewriting strategy by engine name through the unified
/// RewritingEngine layer (rewriting/engine.h). Benches, tests, and tools
/// iterate ScenarioNames() × EngineNames() instead of hard-wiring
/// (scenario, algorithm) pairs.

#ifndef AQV_WORKLOAD_REGISTRY_H_
#define AQV_WORKLOAD_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "answering/answering.h"
#include "eval/database.h"
#include "rewriting/engine.h"
#include "util/status.h"
#include "workload/scenarios.h"

namespace aqv {

/// Names of all registered scenarios, in a stable order:
/// {"travel", "warehouse", "bibliography"}.
const std::vector<std::string>& ScenarioNames();

/// Builds the scenario registered under `name` (kNotFound otherwise).
/// Additionally accepts "generated" — a default-spec instance of the
/// scenario-family generator (workload/generator.h) — which is kept out
/// of ScenarioNames() so existing registry-iterating grids are unchanged.
[[nodiscard]] Result<Scenario> MakeScenarioByName(std::string_view name, uint64_t seed,
                                    int db_size);

/// \brief Runs one engine on one scenario: wraps the scenario's query and
/// views into a RewriteRequest (singleton union; the ucq engine accepts it
/// too) and dispatches through the engine registry. `options.oracle`, when
/// set, is shared across calls — the cross-engine cache reuse the bench
/// measures.
[[nodiscard]] Result<RewriteResponse> RewriteScenarioWithEngine(const Scenario& scenario,
                                                  std::string_view engine_name,
                                                  const EngineOptions& options);

/// \brief A synthesized mixed-scenario request batch: the workload-side
/// input of the service layer (src/service/ converts it to ServiceRequests
/// via ToServiceRequests and feeds RewriteService::RewriteBatch).
///
/// `engines`, `requests`, and `labels` are parallel arrays — one entry per
/// batch item. Every request's `views` pointer aims into an element of
/// `scenarios`, which therefore owns the batch's lifetime: keep the whole
/// struct alive (it is move-only, never reallocating the scenarios) until
/// every response has been collected.
struct ScenarioRequestBatch {
  std::vector<std::unique_ptr<Scenario>> scenarios;
  std::vector<std::string> engines;
  std::vector<RewriteRequest> requests;
  /// "scenario/engine/rep:N" — for logs, bench counters, and assertions.
  std::vector<std::string> labels;

  size_t size() const { return requests.size(); }
};

/// \brief Synthesizes the cross product scenario_names × engine_names ×
/// repeats into one mixed batch, the workload shape of a rewriting service
/// fronting one view catalog for many concurrent queries.
///
/// Each (scenario, repeat) pair gets its own Scenario instance built with
/// seed `seed + repeat` — repeats are fresh problem instances over the
/// same schema shape, not verbatim duplicates — and all engines of one
/// (scenario, repeat) share that instance. Requests carry default
/// EngineOptions (no oracle); the service wires its shared oracle in.
/// Empty name lists or repeats < 1 yield kInvalidArgument; unknown names
/// propagate kNotFound from the underlying registries.
[[nodiscard]] Result<ScenarioRequestBatch> MakeBatchFromScenarios(
    const std::vector<std::string>& scenario_names,
    const std::vector<std::string>& engine_names, int repeats, uint64_t seed,
    int db_size);

/// \brief A synthesized answering batch: full AnswerRequests — query,
/// views, base instance, *and pre-materialized extents* — over owned
/// Scenario objects, the workload-side input of the service layer's
/// answering job kind (RewriteService::AnswerBatch consumes `requests`
/// directly).
///
/// `requests` and `labels` are parallel arrays. Each scenario's extents
/// are materialized once and shared by every request over that scenario
/// (the batch-level extent cache), so answering jobs measure planning +
/// execution, not repeated view evaluation. Keep the whole struct alive
/// (move-only, never reallocating scenarios/extents) until every response
/// has been collected.
struct AnswerScenarioBatch {
  std::vector<std::unique_ptr<Scenario>> scenarios;
  /// extents[i] belongs to scenarios[i].
  std::vector<std::unique_ptr<Database>> extents;
  std::vector<AnswerRequest> requests;
  /// "scenario/route/engine/rep:N" (engine omitted for engine-independent
  /// routes) — for logs, bench counters, and assertions.
  std::vector<std::string> labels;

  size_t size() const { return requests.size(); }
};

/// \brief Synthesizes the grid scenario_names × routes × engine_names ×
/// repeats into one answering batch — the workload shape of a mediator
/// answering many concurrent queries over one view catalog.
///
/// Engine-independent routes (kDirect, kInverseRules) contribute one
/// request per (scenario, repeat) instead of one per engine. Each
/// (scenario, repeat) pair gets its own Scenario built with seed
/// `seed + repeat` plus its own materialized extents. Requests carry
/// default options (no oracle); the service wires its shared oracle in.
/// Empty name/route lists or repeats < 1 yield kInvalidArgument; unknown
/// names propagate kNotFound.
[[nodiscard]] Result<AnswerScenarioBatch> MakeAnswerBatchFromScenarios(
    const std::vector<std::string>& scenario_names,
    const std::vector<std::string>& engine_names,
    const std::vector<AnswerRoute>& routes, int repeats, uint64_t seed,
    int db_size);

}  // namespace aqv

#endif  // AQV_WORKLOAD_REGISTRY_H_
