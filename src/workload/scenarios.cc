#include "workload/scenarios.h"

#include "cq/parser.h"
#include "util/rng.h"
#include "workload/datagen.h"

namespace aqv {

namespace {

/// Parses the query and views of a scenario from source text.
Status WireScenario(Scenario* s, const std::string& query_text,
                    const std::string& views_text) {
  Catalog* cat = s->catalog.get();
  AQV_ASSIGN_OR_RETURN(ViewSet views, ViewSet::Parse(views_text, cat));
  s->views = std::move(views);
  AQV_ASSIGN_OR_RETURN(Query q, ParseQuery(query_text, cat));
  s->query = std::move(q);
  return Status::OK();
}

}  // namespace

Result<Scenario> MakeTravelScenario(uint64_t seed, int db_size) {
  Scenario s;
  s.catalog = std::make_unique<Catalog>();
  s.description =
      "LAV travel integration: route/service sources over "
      "flight-serves-train global schema";

  const std::string views = R"(
    % Source 1: route pairs, airline hidden.
    routes(F, T) :- flight(F, T, A).
    % Source 2: airline service directory.
    serving(A, C) :- serves(A, C).
    % Source 3: flights by airlines into cities they serve.
    goodflights(F, T, A) :- flight(F, T, A), serves(A, T).
    % Source 4: train connections.
    rail(F, T) :- train(F, T).
    % Source 5: one airline's own timetable (airline id fixed at 10000).
    unionair(F, T) :- flight(F, T, 10000).
  )";
  const std::string query =
      "q(F, T, A) :- flight(F, T, A), serves(A, T).";
  AQV_RETURN_NOT_OK(WireScenario(&s, query, views));

  Rng rng(seed);
  Catalog* cat = s.catalog.get();
  s.base = Database(cat);
  AQV_ASSIGN_OR_RETURN(PredId flight, cat->FindPredicate("flight"));
  AQV_ASSIGN_OR_RETURN(PredId serves, cat->FindPredicate("serves"));
  AQV_ASSIGN_OR_RETURN(PredId train, cat->FindPredicate("train"));
  int cities = std::max(4, db_size / 20);
  int airlines = std::max(2, db_size / 100);
  for (int i = 0; i < db_size; ++i) {
    Value from = static_cast<Value>(rng.NextBounded(cities));
    Value to = static_cast<Value>(rng.NextBounded(cities));
    Value airline = 10'000 + static_cast<Value>(rng.NextBounded(airlines));
    s.base.Add(flight, {from, to, airline});
    if (rng.NextBool(0.5)) {
      s.base.Add(serves,
                 {airline, static_cast<Value>(rng.NextBounded(cities))});
    }
    if (rng.NextBool(0.3)) {
      s.base.Add(train, {to, static_cast<Value>(rng.NextBounded(cities))});
    }
  }
  // Guarantee some query answers: airlines serving their destinations
  // (including airline 10000, so the unionair source contributes certain
  // answers in the contained-only regime).
  for (int i = 0; i < std::max(2, db_size / 10); ++i) {
    Value from = static_cast<Value>(rng.NextBounded(cities));
    Value to = static_cast<Value>(rng.NextBounded(cities));
    Value airline = i % 2 == 0
                        ? 10'000
                        : 10'000 + static_cast<Value>(rng.NextBounded(airlines));
    s.base.Add(flight, {from, to, airline});
    s.base.Add(serves, {airline, to});
  }
  s.base.DedupAll();
  return s;
}

Result<Scenario> MakeWarehouseScenario(uint64_t seed, int db_size) {
  Scenario s;
  s.catalog = std::make_unique<Catalog>();
  s.description =
      "Materialized-view optimization: sales star schema with pre-joined "
      "views; the query has an equivalent rewriting";

  const std::string views = R"(
    % Sales joined with product dimension.
    salesprod(C, P, Cat) :- sale(C, P), product(P, Cat).
    % Sales joined with customer dimension.
    salescust(C, P, R) :- sale(C, P), customer(C, R).
    % Full pre-join.
    salesfull(C, P, Cat, R) :- sale(C, P), product(P, Cat), customer(C, R).
    % Category directory.
    cats(P, Cat) :- product(P, Cat).
  )";
  const std::string query =
      "q(C, P, Cat, R) :- sale(C, P), product(P, Cat), customer(C, R).";
  AQV_RETURN_NOT_OK(WireScenario(&s, query, views));

  Rng rng(seed);
  Catalog* cat = s.catalog.get();
  s.base = Database(cat);
  AQV_ASSIGN_OR_RETURN(PredId sale, cat->FindPredicate("sale"));
  AQV_ASSIGN_OR_RETURN(PredId product, cat->FindPredicate("product"));
  AQV_ASSIGN_OR_RETURN(PredId customer, cat->FindPredicate("customer"));
  int num_products = std::max(4, db_size / 10);
  int num_customers = std::max(4, db_size / 5);
  int num_categories = std::max(2, db_size / 100);
  int num_regions = 7;
  for (int p = 0; p < num_products; ++p) {
    s.base.Add(product,
               {p, 5'000 + static_cast<Value>(rng.NextBounded(num_categories))});
  }
  for (int c = 0; c < num_customers; ++c) {
    s.base.Add(customer,
               {c, 9'000 + static_cast<Value>(rng.NextBounded(num_regions))});
  }
  for (int i = 0; i < db_size; ++i) {
    s.base.Add(sale, {static_cast<Value>(rng.NextBounded(num_customers)),
                      static_cast<Value>(rng.NextBounded(num_products))});
  }
  s.base.DedupAll();
  return s;
}

Result<Scenario> MakeBibliographyScenario(uint64_t seed, int db_size) {
  Scenario s;
  s.catalog = std::make_unique<Catalog>();
  s.description =
      "Information-Manifold style bibliography: citation sources with "
      "restricted exposure";

  const std::string views = R"(
    % Papers citing each other within a topic.
    samecites(X, Y) :- cites(X, Y), sametopic(X, Y).
    % Citation pairs, one endpoint hidden.
    citedby(Y) :- cites(X, Y).
    % Mutual citations.
    mutual(X, Y) :- cites(X, Y), cites(Y, X).
    % Topic pairs.
    topics(X, Y) :- sametopic(X, Y).
  )";
  const std::string query = "q(X, Y) :- cites(X, Y), cites(Y, X), sametopic(X, Y).";
  AQV_RETURN_NOT_OK(WireScenario(&s, query, views));

  Rng rng(seed);
  Catalog* cat = s.catalog.get();
  s.base = Database(cat);
  AQV_ASSIGN_OR_RETURN(PredId cites, cat->FindPredicate("cites"));
  AQV_ASSIGN_OR_RETURN(PredId sametopic, cat->FindPredicate("sametopic"));
  int papers = std::max(6, db_size / 8);
  for (int i = 0; i < db_size; ++i) {
    Value x = static_cast<Value>(rng.NextBounded(papers));
    Value y = static_cast<Value>(rng.NextBounded(papers));
    s.base.Add(cites, {x, y});
    if (rng.NextBool(0.4)) s.base.Add(cites, {y, x});
    if (rng.NextBool(0.5)) {
      s.base.Add(sametopic, {x, y});
      s.base.Add(sametopic, {y, x});
    }
  }
  s.base.DedupAll();
  return s;
}

}  // namespace aqv
