#include "workload/datagen.h"

namespace aqv {

Database MakeRandomDatabase(const Catalog* catalog,
                            const std::vector<PredId>& preds, Rng* rng,
                            const DataGenSpec& spec) {
  Database db(catalog);
  for (PredId p : preds) {
    int arity = catalog->pred(p).arity;
    Relation* rel = db.GetOrCreate(p);
    std::vector<Value> row(arity);
    for (int i = 0; i < spec.tuples_per_relation; ++i) {
      for (int c = 0; c < arity; ++c) {
        row[c] = static_cast<Value>(
            rng->NextZipf(spec.domain_size, spec.zipf_skew));
      }
      rel->Add(row);
    }
    rel->SortDedup();
  }
  return db;
}

std::vector<PredId> ExtensionalPredicates(const Catalog& catalog) {
  std::vector<PredId> out;
  for (PredId p = 0; p < catalog.num_predicates(); ++p) {
    if (catalog.pred(p).kind == PredKind::kExtensional) out.push_back(p);
  }
  return out;
}

}  // namespace aqv
