#include "workload/generators.h"

#include <algorithm>
#include <set>

#include "containment/minimize.h"

namespace aqv {

namespace {

/// Registers the chain predicates r1..rn (or the single shared predicate).
Result<std::vector<PredId>> ChainPreds(Catalog* catalog,
                                       const ChainQuerySpec& spec) {
  std::vector<PredId> preds;
  int distinct = spec.distinct_predicates ? spec.length : 1;
  for (int i = 0; i < distinct; ++i) {
    AQV_ASSIGN_OR_RETURN(
        PredId p,
        catalog->GetOrAddPredicate(spec.pred_prefix + std::to_string(i + 1),
                                   2));
    preds.push_back(p);
  }
  for (int i = distinct; i < spec.length; ++i) preds.push_back(preds[0]);
  return preds;
}

/// Chooses the head variables of a generated view according to `policy`,
/// always keeping at least one variable (safety of the head is then
/// guaranteed because every chain/star/clique variable occurs in the body).
std::vector<VarId> PickDistinguished(Rng* rng, DistinguishedPolicy policy,
                                     double keep_prob,
                                     const std::vector<VarId>& ends,
                                     const std::vector<VarId>& all) {
  switch (policy) {
    case DistinguishedPolicy::kEnds:
      return ends;
    case DistinguishedPolicy::kAll:
      return all;
    case DistinguishedPolicy::kRandom: {
      std::vector<VarId> out;
      for (VarId v : all) {
        if (rng->NextBool(keep_prob)) out.push_back(v);
      }
      if (out.empty()) out.push_back(ends.front());
      return out;
    }
  }
  return all;
}

Result<Query> FinishView(Catalog* catalog, Query* body_holder,
                         const std::string& view_name,
                         const std::vector<VarId>& head_vars) {
  std::vector<Term> args;
  args.reserve(head_vars.size());
  for (VarId v : head_vars) args.push_back(Term::Var(v));
  AQV_ASSIGN_OR_RETURN(
      PredId pred,
      catalog->GetOrAddPredicate(view_name, static_cast<int>(args.size()),
                                 PredKind::kIntensional));
  body_holder->set_head(Atom(pred, std::move(args)));
  AQV_RETURN_NOT_OK(body_holder->Validate());
  return *body_holder;
}

}  // namespace

Result<Query> MakeChainQuery(Catalog* catalog, const ChainQuerySpec& spec) {
  if (spec.length < 1) {
    return Status::InvalidArgument("chain length must be >= 1");
  }
  AQV_ASSIGN_OR_RETURN(std::vector<PredId> preds, ChainPreds(catalog, spec));
  Query q(catalog);
  std::vector<VarId> vars;
  for (int i = 0; i <= spec.length; ++i) {
    vars.push_back(q.AddVariable("X" + std::to_string(i)));
  }
  for (int i = 0; i < spec.length; ++i) {
    q.AddBodyAtom(
        Atom(preds[i], {Term::Var(vars[i]), Term::Var(vars[i + 1])}));
  }
  AQV_ASSIGN_OR_RETURN(
      PredId head,
      catalog->GetOrAddPredicate(spec.head_name, 2, PredKind::kIntensional));
  q.set_head(Atom(head, {Term::Var(vars.front()), Term::Var(vars.back())}));
  AQV_RETURN_NOT_OK(q.Validate());
  return q;
}

Result<ViewSet> MakeChainViews(Catalog* catalog, Rng* rng,
                               const ChainViewSpec& spec) {
  AQV_ASSIGN_OR_RETURN(std::vector<PredId> preds,
                       ChainPreds(catalog, spec.chain));
  ViewSet out;
  for (int vi = 0; vi < spec.num_views; ++vi) {
    int max_len = std::min(spec.max_length, spec.chain.length);
    int len = static_cast<int>(
        rng->NextInRange(std::min(spec.min_length, max_len), max_len));
    int start = static_cast<int>(rng->NextInRange(0, spec.chain.length - len));
    Query body(catalog);
    std::vector<VarId> vars;
    for (int i = 0; i <= len; ++i) {
      vars.push_back(body.AddVariable("Y" + std::to_string(start + i)));
    }
    for (int i = 0; i < len; ++i) {
      body.AddBodyAtom(Atom(preds[start + i],
                            {Term::Var(vars[i]), Term::Var(vars[i + 1])}));
    }
    std::vector<VarId> head_vars =
        PickDistinguished(rng, spec.policy, spec.random_keep_prob,
                          {vars.front(), vars.back()}, vars);
    AQV_ASSIGN_OR_RETURN(
        Query view,
        FinishView(catalog, &body,
                   spec.view_prefix + std::to_string(vi), head_vars));
    AQV_RETURN_NOT_OK(out.Add(std::move(view)));
  }
  return out;
}

Result<Query> MakeStarQuery(Catalog* catalog, const StarQuerySpec& spec) {
  if (spec.rays < 1) return Status::InvalidArgument("star needs >= 1 ray");
  Query q(catalog);
  VarId center = q.AddVariable("X0");
  std::vector<VarId> leaves;
  std::vector<Term> head_args;
  if (spec.distinguish_center) head_args.push_back(Term::Var(center));
  for (int i = 0; i < spec.rays; ++i) {
    VarId leaf = q.AddVariable("X" + std::to_string(i + 1));
    leaves.push_back(leaf);
    head_args.push_back(Term::Var(leaf));
    std::string pname = spec.distinct_predicates
                            ? spec.pred_prefix + std::to_string(i + 1)
                            : spec.pred_prefix;
    AQV_ASSIGN_OR_RETURN(PredId p, catalog->GetOrAddPredicate(pname, 2));
    q.AddBodyAtom(Atom(p, {Term::Var(center), Term::Var(leaf)}));
  }
  AQV_ASSIGN_OR_RETURN(
      PredId head,
      catalog->GetOrAddPredicate(spec.head_name,
                                 static_cast<int>(head_args.size()),
                                 PredKind::kIntensional));
  q.set_head(Atom(head, std::move(head_args)));
  AQV_RETURN_NOT_OK(q.Validate());
  return q;
}

Result<ViewSet> MakeStarViews(Catalog* catalog, Rng* rng,
                              const StarViewSpec& spec) {
  ViewSet out;
  for (int vi = 0; vi < spec.num_views; ++vi) {
    int max_rays = std::min(spec.max_rays, spec.star.rays);
    int k = static_cast<int>(
        rng->NextInRange(std::min(spec.min_rays, max_rays), max_rays));
    std::vector<int> rays(spec.star.rays);
    for (int i = 0; i < spec.star.rays; ++i) rays[i] = i;
    rng->Shuffle(&rays);
    rays.resize(k);
    std::sort(rays.begin(), rays.end());

    Query body(catalog);
    VarId center = body.AddVariable("Y0");
    std::vector<VarId> all{center};
    std::vector<VarId> leaves;
    for (int ray : rays) {
      VarId leaf = body.AddVariable("Y" + std::to_string(ray + 1));
      all.push_back(leaf);
      leaves.push_back(leaf);
      std::string pname = spec.star.distinct_predicates
                              ? spec.star.pred_prefix + std::to_string(ray + 1)
                              : spec.star.pred_prefix;
      AQV_ASSIGN_OR_RETURN(PredId p, catalog->GetOrAddPredicate(pname, 2));
      body.AddBodyAtom(Atom(p, {Term::Var(center), Term::Var(leaf)}));
    }
    std::vector<VarId> head_vars =
        PickDistinguished(rng, spec.policy, spec.random_keep_prob,
                          {leaves.empty() ? center : leaves.front(), center},
                          all);
    AQV_ASSIGN_OR_RETURN(
        Query view,
        FinishView(catalog, &body,
                   spec.view_prefix + std::to_string(vi), head_vars));
    AQV_RETURN_NOT_OK(out.Add(std::move(view)));
  }
  return out;
}

Result<Query> MakeCompleteQuery(Catalog* catalog,
                                const CompleteQuerySpec& spec) {
  if (spec.nodes < 2) return Status::InvalidArgument("clique needs >= 2 nodes");
  Query q(catalog);
  std::vector<VarId> vars;
  std::vector<Term> head_args;
  for (int i = 0; i < spec.nodes; ++i) {
    VarId v = q.AddVariable("X" + std::to_string(i + 1));
    vars.push_back(v);
    head_args.push_back(Term::Var(v));
  }
  for (int i = 0; i < spec.nodes; ++i) {
    for (int j = i + 1; j < spec.nodes; ++j) {
      std::string pname =
          spec.distinct_predicates
              ? spec.pred_prefix + std::to_string(i + 1) + "_" +
                    std::to_string(j + 1)
              : spec.pred_prefix;
      AQV_ASSIGN_OR_RETURN(PredId p, catalog->GetOrAddPredicate(pname, 2));
      q.AddBodyAtom(Atom(p, {Term::Var(vars[i]), Term::Var(vars[j])}));
    }
  }
  AQV_ASSIGN_OR_RETURN(
      PredId head,
      catalog->GetOrAddPredicate(spec.head_name, spec.nodes,
                                 PredKind::kIntensional));
  q.set_head(Atom(head, std::move(head_args)));
  AQV_RETURN_NOT_OK(q.Validate());
  return q;
}

Result<ViewSet> MakeCompleteViews(Catalog* catalog, Rng* rng,
                                  const CompleteViewSpec& spec) {
  // Enumerate the clique's edges, then sample subsets.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < spec.complete.nodes; ++i) {
    for (int j = i + 1; j < spec.complete.nodes; ++j) edges.push_back({i, j});
  }
  ViewSet out;
  for (int vi = 0; vi < spec.num_views; ++vi) {
    int max_edges = std::min<int>(spec.max_edges, edges.size());
    int k = static_cast<int>(
        rng->NextInRange(std::min(spec.min_edges, max_edges), max_edges));
    std::vector<std::pair<int, int>> pool = edges;
    rng->Shuffle(&pool);
    pool.resize(k);

    Query body(catalog);
    std::vector<VarId> node_var(spec.complete.nodes, -1);
    std::vector<VarId> used;
    auto var_of = [&](int node) {
      if (node_var[node] < 0) {
        node_var[node] = body.AddVariable("Y" + std::to_string(node + 1));
        used.push_back(node_var[node]);
      }
      return node_var[node];
    };
    for (auto [i, j] : pool) {
      std::string pname =
          spec.complete.distinct_predicates
              ? spec.complete.pred_prefix + std::to_string(i + 1) + "_" +
                    std::to_string(j + 1)
              : spec.complete.pred_prefix;
      AQV_ASSIGN_OR_RETURN(PredId p, catalog->GetOrAddPredicate(pname, 2));
      body.AddBodyAtom(Atom(p, {Term::Var(var_of(i)), Term::Var(var_of(j))}));
    }
    std::vector<VarId> head_vars = PickDistinguished(
        rng, spec.policy, spec.random_keep_prob, {used.front()}, used);
    AQV_ASSIGN_OR_RETURN(
        Query view,
        FinishView(catalog, &body,
                   spec.view_prefix + std::to_string(vi), head_vars));
    AQV_RETURN_NOT_OK(out.Add(std::move(view)));
  }
  return out;
}

namespace {

Result<Query> MakeRandomRule(Catalog* catalog, Rng* rng,
                             const RandomQuerySpec& spec,
                             const std::string& head_name) {
  Query q(catalog);
  for (int i = 0; i < spec.num_vars; ++i) {
    q.AddVariable("X" + std::to_string(i));
  }
  std::set<VarId> used_vars;
  for (int g = 0; g < spec.num_subgoals; ++g) {
    int pi = static_cast<int>(rng->NextBounded(spec.num_predicates));
    AQV_ASSIGN_OR_RETURN(
        PredId p,
        catalog->GetOrAddPredicate(spec.pred_prefix + std::to_string(pi),
                                   spec.pred_arity));
    std::vector<Term> args;
    for (int a = 0; a < spec.pred_arity; ++a) {
      if (rng->NextBool(spec.constant_prob)) {
        args.push_back(Term::Const(catalog->InternNumericConstant(
            static_cast<int64_t>(rng->NextBounded(spec.constant_pool)))));
      } else {
        VarId v = static_cast<VarId>(rng->NextBounded(spec.num_vars));
        used_vars.insert(v);
        args.push_back(Term::Var(v));
      }
    }
    q.AddBodyAtom(Atom(p, std::move(args)));
  }
  // Head: random subset of used variables (safe by construction).
  std::vector<VarId> pool(used_vars.begin(), used_vars.end());
  if (pool.empty()) {
    // All-constant body: make the head boolean.
    AQV_ASSIGN_OR_RETURN(
        PredId head,
        catalog->GetOrAddPredicate(head_name, 0, PredKind::kIntensional));
    q.set_head(Atom(head, {}));
    AQV_RETURN_NOT_OK(q.Validate());
    return q;
  }
  rng->Shuffle(&pool);
  int k = std::min<int>(spec.head_arity, pool.size());
  std::vector<Term> head_args;
  for (int i = 0; i < k; ++i) head_args.push_back(Term::Var(pool[i]));
  AQV_ASSIGN_OR_RETURN(
      PredId head,
      catalog->GetOrAddPredicate(head_name, k, PredKind::kIntensional));
  q.set_head(Atom(head, std::move(head_args)));
  Query compact = CompactVariables(q);
  AQV_RETURN_NOT_OK(compact.Validate());
  return compact;
}

}  // namespace

Result<Query> MakeRandomQuery(Catalog* catalog, Rng* rng,
                              const RandomQuerySpec& spec) {
  return MakeRandomRule(catalog, rng, spec, spec.head_name);
}

Result<ViewSet> MakeRandomViews(Catalog* catalog, Rng* rng,
                                const RandomQuerySpec& base, int num_views,
                                std::string_view view_prefix) {
  ViewSet out;
  for (int i = 0; i < num_views; ++i) {
    RandomQuerySpec spec = base;
    spec.head_name = std::string(view_prefix) + std::to_string(i);
    AQV_ASSIGN_OR_RETURN(Query v, MakeRandomRule(catalog, rng, spec,
                                                 spec.head_name));
    AQV_RETURN_NOT_OK(out.Add(std::move(v)));
  }
  return out;
}

}  // namespace aqv
