#include "workload/registry.h"

#include <algorithm>

#include "eval/materialize.h"
#include "workload/generator.h"

namespace aqv {

const std::vector<std::string>& ScenarioNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"travel", "warehouse", "bibliography"};
  return *names;
}

Result<Scenario> MakeScenarioByName(std::string_view name, uint64_t seed,
                                    int db_size) {
  if (name == "travel") return MakeTravelScenario(seed, db_size);
  if (name == "warehouse") return MakeWarehouseScenario(seed, db_size);
  if (name == "bibliography") return MakeBibliographyScenario(seed, db_size);
  if (name == "generated") {
    // A default-spec instance of the scenario-family generator
    // (workload/generator.h), sized off db_size like the hand-tiled
    // scenarios. Deliberately NOT in ScenarioNames(): the hand-tiled
    // grids that iterate the registry stay unchanged.
    GeneratedScenarioSpec spec;
    spec.seed = seed;
    spec.facts_per_predicate = std::max(4, db_size / 10);
    spec.domain_size = std::max(8, db_size / 2);
    return GenerateScenario(spec);
  }
  return Status::NotFound("no scenario named '" + std::string(name) + "'");
}

Result<RewriteResponse> RewriteScenarioWithEngine(
    const Scenario& scenario, std::string_view engine_name,
    const EngineOptions& options) {
  RewriteRequest request;
  request.query.disjuncts.push_back(scenario.query);
  request.views = &scenario.views;
  request.options = options;
  return RunEngine(engine_name, request);
}

Result<ScenarioRequestBatch> MakeBatchFromScenarios(
    const std::vector<std::string>& scenario_names,
    const std::vector<std::string>& engine_names, int repeats, uint64_t seed,
    int db_size) {
  if (scenario_names.empty()) {
    return Status::InvalidArgument("MakeBatchFromScenarios: no scenarios");
  }
  if (engine_names.empty()) {
    return Status::InvalidArgument("MakeBatchFromScenarios: no engines");
  }
  if (repeats < 1) {
    return Status::InvalidArgument("MakeBatchFromScenarios: repeats < 1");
  }
  // Fail on unknown engine names up front, not per-request mid-batch.
  for (const std::string& engine : engine_names) {
    AQV_RETURN_NOT_OK(MakeEngine(engine).status());
  }

  ScenarioRequestBatch batch;
  for (const std::string& scenario_name : scenario_names) {
    for (int rep = 0; rep < repeats; ++rep) {
      AQV_ASSIGN_OR_RETURN(
          Scenario scenario,
          MakeScenarioByName(scenario_name, seed + static_cast<uint64_t>(rep),
                             db_size));
      batch.scenarios.push_back(
          std::make_unique<Scenario>(std::move(scenario)));
      const Scenario& owned = *batch.scenarios.back();
      for (const std::string& engine : engine_names) {
        RewriteRequest request;
        request.query.disjuncts.push_back(owned.query);
        request.views = &owned.views;
        batch.engines.push_back(engine);
        batch.requests.push_back(std::move(request));
        batch.labels.push_back(scenario_name + "/" + engine +
                               "/rep:" + std::to_string(rep));
      }
    }
  }
  return batch;
}

Result<AnswerScenarioBatch> MakeAnswerBatchFromScenarios(
    const std::vector<std::string>& scenario_names,
    const std::vector<std::string>& engine_names,
    const std::vector<AnswerRoute>& routes, int repeats, uint64_t seed,
    int db_size) {
  if (scenario_names.empty()) {
    return Status::InvalidArgument("MakeAnswerBatchFromScenarios: no scenarios");
  }
  if (engine_names.empty()) {
    return Status::InvalidArgument("MakeAnswerBatchFromScenarios: no engines");
  }
  if (routes.empty()) {
    return Status::InvalidArgument("MakeAnswerBatchFromScenarios: no routes");
  }
  if (repeats < 1) {
    return Status::InvalidArgument("MakeAnswerBatchFromScenarios: repeats < 1");
  }
  // Fail on unknown engine names up front, not per-request mid-batch.
  for (const std::string& engine : engine_names) {
    AQV_RETURN_NOT_OK(MakeEngine(engine).status());
  }

  AnswerScenarioBatch batch;
  for (const std::string& scenario_name : scenario_names) {
    for (int rep = 0; rep < repeats; ++rep) {
      AQV_ASSIGN_OR_RETURN(
          Scenario scenario,
          MakeScenarioByName(scenario_name, seed + static_cast<uint64_t>(rep),
                             db_size));
      batch.scenarios.push_back(
          std::make_unique<Scenario>(std::move(scenario)));
      const Scenario& owned = *batch.scenarios.back();
      // The per-scenario extent cache every request of this instance
      // shares, regardless of route or engine.
      AQV_ASSIGN_OR_RETURN(Database extents,
                           MaterializeViews(owned.views, owned.base));
      batch.extents.push_back(std::make_unique<Database>(std::move(extents)));
      const Database* owned_extents = batch.extents.back().get();
      for (AnswerRoute route : routes) {
        // The cost route plans across *all* registered engines itself, so
        // only the complete route fans out per engine name here.
        bool engine_dependent = route == AnswerRoute::kCompleteRewriting;
        size_t variants = engine_dependent ? engine_names.size() : 1;
        for (size_t e = 0; e < variants; ++e) {
          AnswerRequest request;
          request.query.disjuncts.push_back(owned.query);
          request.views = &owned.views;
          request.base = &owned.base;
          request.extents = owned_extents;
          request.route = route;
          std::string label = scenario_name + "/" +
                              std::string(AnswerRouteName(route));
          if (engine_dependent) {
            request.engine = engine_names[e];
            label += "/" + engine_names[e];
          }
          label += "/rep:" + std::to_string(rep);
          batch.requests.push_back(std::move(request));
          batch.labels.push_back(std::move(label));
        }
      }
    }
  }
  return batch;
}

}  // namespace aqv
