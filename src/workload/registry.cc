#include "workload/registry.h"

namespace aqv {

const std::vector<std::string>& ScenarioNames() {
  static const std::vector<std::string>* names =
      new std::vector<std::string>{"travel", "warehouse", "bibliography"};
  return *names;
}

Result<Scenario> MakeScenarioByName(std::string_view name, uint64_t seed,
                                    int db_size) {
  if (name == "travel") return MakeTravelScenario(seed, db_size);
  if (name == "warehouse") return MakeWarehouseScenario(seed, db_size);
  if (name == "bibliography") return MakeBibliographyScenario(seed, db_size);
  return Status::NotFound("no scenario named '" + std::string(name) + "'");
}

Result<RewriteResponse> RewriteScenarioWithEngine(
    const Scenario& scenario, std::string_view engine_name,
    const EngineOptions& options) {
  RewriteRequest request;
  request.query.disjuncts.push_back(scenario.query);
  request.views = &scenario.views;
  request.options = options;
  return RunEngine(engine_name, request);
}

}  // namespace aqv
