#ifndef AQV_WORKLOAD_SCENARIOS_H_
#define AQV_WORKLOAD_SCENARIOS_H_

#include <memory>
#include <string>

#include "cq/catalog.h"
#include "cq/query.h"
#include "eval/database.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// \brief A self-contained answering-queries-using-views problem: a global
/// schema (owned catalog), a user query, the available views/sources, and a
/// synthetic "hidden" base database (what a LAV mediator never sees
/// directly, used to materialize extents and cross-check answers).
struct Scenario {
  std::unique_ptr<Catalog> catalog;
  Query query;
  ViewSet views;
  Database base;
  std::string description;
};

/// \brief Travel data-integration scenario (LAV): global schema
///   flight(From, To, Airline), serves(Airline, City), train(From, To);
/// sources expose route pairs, airline-city service, and flight+service
/// joins; the query asks for airlines flying into cities they serve.
/// The `goodflights` source supplies an equivalent rewriting; dropping it
/// (as the examples do) leaves only strictly-contained rewritings, which is
/// the certain-answer regime.
[[nodiscard]] Result<Scenario> MakeTravelScenario(uint64_t seed, int db_size);

/// \brief Warehouse materialized-view scenario: a sales star schema with
/// pre-joined views chosen so the default query has an equivalent rewriting
/// (the query-optimization use case of LMSS — F5 measures the speedup).
[[nodiscard]] Result<Scenario> MakeWarehouseScenario(uint64_t seed, int db_size);

/// \brief Bibliography scenario modeled on the classic Information-Manifold
/// examples: cites/sameTopic sources with restricted exposures.
[[nodiscard]] Result<Scenario> MakeBibliographyScenario(uint64_t seed, int db_size);

}  // namespace aqv

#endif  // AQV_WORKLOAD_SCENARIOS_H_
