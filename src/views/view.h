#ifndef AQV_VIEWS_VIEW_H_
#define AQV_VIEWS_VIEW_H_

#include <string>
#include <string_view>
#include <vector>

#include "cq/catalog.h"
#include "cq/query.h"
#include "util/status.h"

namespace aqv {

/// \brief A named materialized view: a conjunctive query whose head
/// predicate is the view's name.
struct View {
  /// Head predicate id (intensional in the catalog).
  PredId pred = -1;
  /// The defining CQ; head().pred == pred.
  Query definition;

  const std::string& name() const {
    return definition.catalog()->pred(pred).name;
  }
};

/// \brief The set of views available to a rewriting problem, indexed by head
/// predicate.
class ViewSet {
 public:
  /// Adds a view from its defining query. Fails if a view with the same head
  /// predicate already exists or the definition is invalid.
  Status Add(Query definition);

  /// Parses a program of view definitions, one rule per view.
  static Result<ViewSet> Parse(std::string_view text, Catalog* catalog);

  /// The view with head predicate `pred`, or nullptr.
  const View* FindByPred(PredId pred) const;

  /// The view named `name`, or nullptr.
  const View* FindByName(std::string_view name) const;

  const std::vector<View>& views() const { return views_; }
  int size() const { return static_cast<int>(views_.size()); }
  bool empty() const { return views_.empty(); }
  const View& view(int i) const { return views_[i]; }

 private:
  std::vector<View> views_;
};

/// True iff every body atom of `q` is a view predicate of `views`
/// (a *complete* rewriting in LMSS terms; false means partial or base).
bool UsesOnlyViews(const Query& q, const ViewSet& views);

}  // namespace aqv

#endif  // AQV_VIEWS_VIEW_H_
