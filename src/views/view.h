/// \file
/// Umbrella header of the `views` module: named materialized views and view
/// sets. A View is a CQ whose head predicate is the view's name (intensional
/// in the catalog); a ViewSet indexes the views available to one rewriting
/// problem by head predicate. Invariants: a view's `pred` equals its
/// definition's head predicate, all views in a set share the query's
/// Catalog, and view names are unique within a set. The companion header
/// `expansion.h` unfolds rewritings over these definitions — the operation
/// LMSS95 uses to compare a rewriting against the original query.

#ifndef AQV_VIEWS_VIEW_H_
#define AQV_VIEWS_VIEW_H_

#include <string>
#include <string_view>
#include <vector>

#include "cq/catalog.h"
#include "cq/query.h"
#include "util/status.h"

namespace aqv {

/// \brief A named materialized view: a conjunctive query whose head
/// predicate is the view's name.
struct View {
  /// Head predicate id (intensional in the catalog).
  PredId pred = -1;
  /// The defining CQ; head().pred == pred.
  Query definition;

  const std::string& name() const {
    return definition.catalog()->pred(pred).name;
  }
};

/// \brief The set of views available to a rewriting problem, indexed by head
/// predicate.
class ViewSet {
 public:
  /// Adds a view from its defining query. Fails if a view with the same head
  /// predicate already exists or the definition is invalid.
  [[nodiscard]] Status Add(Query definition);

  /// Adds one more rule for a head predicate that may already have views —
  /// a *union source*, whose extent is the union of all its rules'
  /// outputs. Only the extent-side consumers (MaterializeViews and direct
  /// extent evaluation) support union sources; the rewriting engines and
  /// the inverse-rules builder reject view sets containing them, because
  /// expanding a view atom by one rule of a disjunctive definition is
  /// unsound.
  [[nodiscard]] Status AddRule(Query definition);

  /// True when some head predicate has more than one rule (AddRule).
  bool HasUnionSources() const { return has_union_sources_; }

  /// Parses a program of view definitions, one rule per view.
  [[nodiscard]] static Result<ViewSet> Parse(std::string_view text, Catalog* catalog);

  /// The view with head predicate `pred`, or nullptr.
  const View* FindByPred(PredId pred) const;

  /// The view named `name`, or nullptr.
  const View* FindByName(std::string_view name) const;

  const std::vector<View>& views() const { return views_; }
  int size() const { return static_cast<int>(views_.size()); }
  bool empty() const { return views_.empty(); }
  const View& view(int i) const { return views_[i]; }

 private:
  [[nodiscard]] Status AddImpl(Query definition, bool allow_duplicate_pred);

  std::vector<View> views_;
  bool has_union_sources_ = false;
};

/// True iff every body atom of `q` is a view predicate of `views`
/// (a *complete* rewriting in LMSS terms; false means partial or base).
bool UsesOnlyViews(const Query& q, const ViewSet& views);

}  // namespace aqv

#endif  // AQV_VIEWS_VIEW_H_
