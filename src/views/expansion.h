#ifndef AQV_VIEWS_EXPANSION_H_
#define AQV_VIEWS_EXPANSION_H_

#include "containment/containment.h"
#include "cq/query.h"
#include "util/status.h"
#include "views/view.h"

namespace aqv {

/// Outcome of unfolding a rewriting over its view definitions.
struct ExpansionResult {
  /// False when head-argument unification hit a constant clash (e.g. the
  /// rewriting calls v(1,2) but v's head is v(X,X)); such a candidate
  /// denotes the empty query.
  bool satisfiable = true;
  /// The expansion (valid only when satisfiable). Variable space compacted.
  Query query;
};

/// \brief Unfolds every view atom of `rewriting` with its definition from
/// `views`: head variables of the view bind to the atom's arguments,
/// existential variables are freshened per occurrence, and repeated head
/// variables / head constants induce unifications applied to the whole
/// result. Non-view atoms pass through (partial rewritings).
///
/// The expansion is the query LMSS compares against Q: `rewriting` is an
/// equivalent rewriting of Q iff Expand(rewriting) ≡ Q.
[[nodiscard]] Result<ExpansionResult> ExpandRewriting(const Query& rewriting,
                                        const ViewSet& views);

/// Expands every disjunct; unsatisfiable disjuncts are dropped.
[[nodiscard]] Result<UnionQuery> ExpandUnion(const UnionQuery& rewritings,
                               const ViewSet& views);

/// \brief Minimizes a rewriting at the *view-atom* level: drops body atoms
/// (view or base) as long as the expansion stays equivalent to the original
/// expansion. The result evaluates fewer view extents for the same answers
/// — the rewriting-level analogue of Chandra-Merlin minimization, which
/// operates below the view abstraction and cannot remove a redundant view
/// atom whose expansion overlaps another's.
[[nodiscard]] Result<Query> MinimizeRewriting(const Query& rewriting, const ViewSet& views,
                                const ContainmentOptions& options = {});

}  // namespace aqv

#endif  // AQV_VIEWS_EXPANSION_H_
