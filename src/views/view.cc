#include "views/view.h"

#include "cq/parser.h"

namespace aqv {

Status ViewSet::Add(Query definition) {
  return AddImpl(std::move(definition), /*allow_duplicate_pred=*/false);
}

Status ViewSet::AddRule(Query definition) {
  return AddImpl(std::move(definition), /*allow_duplicate_pred=*/true);
}

Status ViewSet::AddImpl(Query definition, bool allow_duplicate_pred) {
  // Validate before touching the catalog: the error messages below
  // dereference it, and Validate() is what rejects a catalog-less query.
  AQV_RETURN_NOT_OK(definition.Validate());
  PredId pred = definition.head().pred;
  bool duplicate = FindByPred(pred) != nullptr;
  if (duplicate && !allow_duplicate_pred) {
    return Status::InvalidArgument(
        "duplicate view definition for '" +
        definition.catalog()->pred(pred).name + "'");
  }
  for (const Atom& a : definition.body()) {
    if (a.pred == pred) {
      return Status::InvalidArgument("view '" +
                                     definition.catalog()->pred(pred).name +
                                     "' refers to itself");
    }
  }
  if (duplicate) has_union_sources_ = true;
  views_.push_back(View{pred, std::move(definition)});
  return Status::OK();
}

Result<ViewSet> ViewSet::Parse(std::string_view text, Catalog* catalog) {
  AQV_ASSIGN_OR_RETURN(std::vector<Query> rules, ParseProgram(text, catalog));
  ViewSet out;
  for (Query& rule : rules) {
    AQV_RETURN_NOT_OK(out.Add(std::move(rule)));
  }
  return out;
}

const View* ViewSet::FindByPred(PredId pred) const {
  for (const View& v : views_) {
    if (v.pred == pred) return &v;
  }
  return nullptr;
}

const View* ViewSet::FindByName(std::string_view name) const {
  for (const View& v : views_) {
    if (v.name() == name) return &v;
  }
  return nullptr;
}

bool UsesOnlyViews(const Query& q, const ViewSet& views) {
  for (const Atom& a : q.body()) {
    if (views.FindByPred(a.pred) == nullptr) return false;
  }
  return true;
}

}  // namespace aqv
