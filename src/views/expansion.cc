#include "views/expansion.h"

#include <string>

#include "containment/comparison_containment.h"
#include "containment/minimize.h"
#include "cq/substitution.h"

namespace aqv {

Result<ExpansionResult> ExpandRewriting(const Query& rewriting,
                                        const ViewSet& views) {
  Query out(rewriting.catalog());
  for (int v = 0; v < rewriting.num_vars(); ++v) {
    out.AddVariable(rewriting.var_name(v));
  }
  out.set_head(rewriting.head());
  for (const Comparison& c : rewriting.comparisons()) out.AddComparison(c);

  // Equalities induced by repeated head variables / head constants are
  // staged as Eq comparisons and solved once at the end.
  int occurrence = 0;
  for (const Atom& a : rewriting.body()) {
    const View* view = views.FindByPred(a.pred);
    if (view == nullptr) {
      out.AddBodyAtom(a);
      continue;
    }
    const Query& def = view->definition;
    if (def.head().arity() != a.arity()) {
      return Status::InvalidArgument("view atom arity mismatch for '" +
                                     view->name() + "'");
    }
    VarImporter imp(def, &out, "x" + std::to_string(occurrence++) + "_");
    for (int i = 0; i < a.arity(); ++i) {
      Term h = def.head().args[i];
      Term t = a.args[i];
      if (h.is_var() && !imp.HasMapping(h.var())) {
        imp.Preset(h.var(), t);
      } else {
        Term m = imp.Map(h);
        if (m == t) continue;
        out.AddComparison(Comparison(CmpOp::kEq, m, t));
      }
    }
    for (const Atom& b : def.body()) out.AddBodyAtom(imp.ImportAtom(b));
    for (const Comparison& c : def.comparisons()) {
      out.AddComparison(imp.ImportComparison(c));
    }
  }

  ExpansionResult result;
  bool unsat = false;
  Query normalized = NormalizeEqualities(out, &unsat);
  if (unsat) {
    result.satisfiable = false;
    return result;
  }
  result.query = CompactVariables(normalized);
  return result;
}

Result<UnionQuery> ExpandUnion(const UnionQuery& rewritings,
                               const ViewSet& views) {
  UnionQuery out;
  for (const Query& r : rewritings.disjuncts) {
    AQV_ASSIGN_OR_RETURN(ExpansionResult e, ExpandRewriting(r, views));
    if (e.satisfiable) out.disjuncts.push_back(std::move(e.query));
  }
  return out;
}

Result<Query> MinimizeRewriting(const Query& rewriting, const ViewSet& views,
                                const ContainmentOptions& options) {
  AQV_ASSIGN_OR_RETURN(ExpansionResult original,
                       ExpandRewriting(rewriting, views));
  if (!original.satisfiable) {
    return Status::InvalidArgument(
        "cannot minimize an unsatisfiable rewriting");
  }
  Query current = rewriting;
  bool changed = true;
  while (changed) {
    changed = false;
    for (int i = 0; i < static_cast<int>(current.body().size()); ++i) {
      if (current.body().size() == 1) break;
      Query candidate = current;
      candidate.RemoveBodyAtom(i);
      if (!candidate.Validate().ok()) continue;  // head var lost its binding
      AQV_ASSIGN_OR_RETURN(ExpansionResult e,
                           ExpandRewriting(candidate, views));
      if (!e.satisfiable) continue;
      // Dropping an atom only widens; equivalence needs the narrow check.
      AQV_ASSIGN_OR_RETURN(bool narrow,
                           IsContainedIn(e.query, original.query, options));
      if (!narrow) continue;
      current = std::move(candidate);
      changed = true;
      break;
    }
  }
  return CompactVariables(current);
}

}  // namespace aqv
