/// \file
/// Umbrella header of the `cq` module: conjunctive queries (CQs), the value
/// type every other module manipulates. A Query is a head atom plus a bag of
/// body atoms over a shared Catalog, optionally extended with built-in
/// comparisons (<, <=, =, !=). Invariants: every query refers to exactly one
/// Catalog for predicate names/arities; variables are dense local ids
/// 0..num_vars()-1; Validate() enforces safety (every head variable occurs
/// in an ordinary body atom). The module has no dependencies beyond `util`
/// — containment, rewriting, and evaluation all build on top of it.

#ifndef AQV_CQ_QUERY_H_
#define AQV_CQ_QUERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cq/atom.h"
#include "cq/catalog.h"
#include "cq/comparison.h"
#include "cq/term.h"
#include "util/status.h"

namespace aqv {

/// \brief A conjunctive query (CQ), optionally with built-in comparisons:
///
///   h(X̄) :- p1(t̄1), ..., pn(t̄n), c1, ..., cm.
///
/// Variables are dense local ids 0..num_vars()-1 with printable names.
/// The head is a single atom whose predicate is intensional in the Catalog.
/// Queries are value types; copying is cheap enough for the search
/// algorithms, which duplicate candidate queries freely.
class Query {
 public:
  Query() : catalog_(nullptr) {}
  explicit Query(const Catalog* catalog) : catalog_(catalog) {}

  // --- construction -------------------------------------------------------

  /// Adds a variable with the given printable name; returns its id.
  VarId AddVariable(std::string name);

  /// Adds `count` fresh variables named `<prefix>0..`; returns first id.
  VarId AddVariables(int count, std::string_view prefix);

  void set_head(Atom head) { head_ = std::move(head); }
  void AddBodyAtom(Atom atom) { body_.push_back(std::move(atom)); }
  void AddComparison(Comparison c) { comparisons_.push_back(c); }

  /// Removes the body atom at `index` (order of the rest preserved).
  void RemoveBodyAtom(int index);

  // --- accessors -----------------------------------------------------------

  const Catalog* catalog() const { return catalog_; }
  const Atom& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  const std::vector<Comparison>& comparisons() const { return comparisons_; }
  bool has_comparisons() const { return !comparisons_.empty(); }
  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::vector<std::string>& var_names() const { return var_names_; }
  const std::string& var_name(VarId v) const { return var_names_[v]; }

  // --- derived structure ---------------------------------------------------

  /// Distinct head variables in order of first appearance in the head.
  std::vector<VarId> HeadVars() const;

  /// distinguished[v] == true iff variable v occurs in the head.
  std::vector<bool> DistinguishedMask() const;

  /// in_body[v] == true iff variable v occurs in some relational body atom.
  std::vector<bool> BodyVarMask() const;

  /// Body atom indices (into body()) in which variable v occurs.
  std::vector<std::vector<int>> VarOccurrences() const;

  /// Safety check: every head variable and every comparison variable must
  /// occur in a relational body atom; all atom arities must match the
  /// catalog; comparison constants must be numeric.
  [[nodiscard]] Status Validate() const;

  // --- rendering -----------------------------------------------------------

  /// Renders the rule, e.g. "q(X) :- r(X, Y), Y < 3.".
  std::string ToString() const;

  /// A renaming-invariant key: two isomorphic queries always map to the same
  /// key; unequal keys imply non-isomorphic. (Collisions between
  /// non-isomorphic queries are possible; callers must confirm with an
  /// equivalence test before deduplicating.) Retained for diagnostics and
  /// external tooling; production dedup uses Fingerprint()/CanonicalForm(),
  /// which share this key's colour-refinement core.
  std::string CanonicalKey() const;

  /// \brief A normalized structural copy: body atoms sorted by a
  /// color-refinement key, exact duplicate atoms dropped (set semantics),
  /// variables renumbered densely in order of first appearance across head,
  /// sorted body, then sorted comparisons. Unused variables are dropped.
  ///
  /// Equal canonical forms (operator==) imply the originals are isomorphic
  /// up to duplicate atoms — in particular equivalent. The converse is
  /// best-effort: automorphism-rich queries that color refinement cannot
  /// discriminate may normalize differently, costing only a dedup/cache
  /// miss, never a wrong answer.
  Query CanonicalForm() const;

  /// \brief A renaming-invariant 64-bit structural fingerprint: the hash of
  /// CanonicalForm(). Unequal fingerprints imply non-isomorphic queries;
  /// equal fingerprints must be confirmed (compare CanonicalForm() for
  /// isomorphism, fall back to an equivalence test) before deduplicating —
  /// the contract the rewriting engines' dedupers implement.
  uint64_t Fingerprint() const;

  friend bool operator==(const Query& a, const Query& b) {
    return a.head_ == b.head_ && a.body_ == b.body_ &&
           a.comparisons_ == b.comparisons_ &&
           a.var_names_.size() == b.var_names_.size();
  }

 private:
  const Catalog* catalog_;
  Atom head_;
  std::vector<Atom> body_;
  std::vector<Comparison> comparisons_;
  std::vector<std::string> var_names_;
};

/// Order- and renaming-*sensitive* 64-bit hash of a query's exact structure
/// (head, body atoms in order, comparisons in order, variable ids as-is).
/// Query::Fingerprint() == StructuralHash(CanonicalForm()); callers that
/// already hold a canonical form use this to avoid re-canonicalizing.
uint64_t StructuralHash(const Query& q);

// --- catalog-independent encodings ----------------------------------------
//
// The identity layer shared server-lifetime caches key on: flat word
// sequences in which every predicate and constant appears as its
// process-global id (cq/global_symbols.h) instead of its catalog-local
// dense id. Two queries parsed into *different* catalogs from the same
// surface text produce identical encodings, so a cache keyed on them is
// shared across the short-lived per-connection catalogs of the frontend
// server — and entry confirmation is plain vector equality, with no
// catalog pointer (and hence no catalog-lifetime contract) involved.
// Equal canonical encodings imply the queries are isomorphic under the
// meaning-preserving symbol bijection, so every containment decision, and
// every rewriting over equally-encoded view sets, transfers exactly.

/// Verbatim (order- and renaming-sensitive) catalog-independent encoding:
/// head, body atoms in input order, comparisons in input order, variable
/// ids as-is, symbols as global ids. The analogue of operator== across
/// catalogs: equal raw encodings imply globally-identical structure.
std::vector<uint64_t> GlobalRawEncoding(const Query& q);

/// Canonical catalog-independent encoding: colour-refinement normalization
/// exactly parallel to CanonicalForm() — body atoms sorted (by global-id
/// keys), exact duplicates dropped, variables renumbered densely by first
/// appearance — emitted as a flat word sequence. Equal encodings imply
/// isomorphic queries (up to duplicate atoms) with identical predicate
/// meanings and constants; the converse is best-effort, as for
/// CanonicalForm — a miss, never a wrong match.
std::vector<uint64_t> GlobalCanonicalEncoding(const Query& q);

/// FNV-1a over an encoding's words (the cache-key hash for either
/// encoding flavor).
uint64_t HashWords(const std::vector<uint64_t>& words);

/// The renaming-invariant catalog-independent 64-bit fingerprint:
/// HashWords(GlobalCanonicalEncoding(q)). The cross-catalog analogue of
/// Query::Fingerprint(), with the same confirm-before-trusting contract.
uint64_t GlobalFingerprint(const Query& q);

/// \brief A union of conjunctive queries with a common head predicate.
///
/// The output representation for maximally-contained rewritings (Bucket,
/// MiniCon) and for interleaving-based expansions.
struct UnionQuery {
  std::vector<Query> disjuncts;

  bool empty() const { return disjuncts.empty(); }
  int size() const { return static_cast<int>(disjuncts.size()); }
  std::string ToString() const;
};

}  // namespace aqv

#endif  // AQV_CQ_QUERY_H_
