#ifndef AQV_CQ_PARSER_H_
#define AQV_CQ_PARSER_H_

#include <string_view>
#include <vector>

#include "cq/atom.h"
#include "cq/catalog.h"
#include "cq/query.h"
#include "util/status.h"

namespace aqv {

/// \brief Parses one rule in datalog-ish surface syntax:
///
///   q(X, Y) :- edge(X, Z), edge(Z, Y), X < 5, Y != 7.
///
/// Tokens starting with an uppercase letter or '_' are variables; lowercase
/// identifiers and integer literals are constants; predicate symbols are
/// lowercase identifiers. `%` starts a line comment. Comparison operators:
/// <, <=, >, >=, =, != (with > and >= normalized by operand swap).
///
/// The head predicate is registered as intensional in `catalog`; body
/// predicates default to extensional. Arity consistency is enforced against
/// previous uses. The returned query is Validate()d.
///
/// The complete surface-syntax reference — grammar, lexing rules, the
/// operand-swap normalization, and the error catalogue — lives in
/// docs/QUERY_LANGUAGE.md.
[[nodiscard]] Result<Query> ParseQuery(std::string_view text, Catalog* catalog);

/// Parses a newline/period-separated sequence of rules.
[[nodiscard]] Result<std::vector<Query>> ParseProgram(std::string_view text,
                                        Catalog* catalog);

/// \brief Parses one ground fact:
///
///   edge(1, 2).      flight(paris, 7, 10000).
///
/// Every argument must be a constant (integer literal or lowercase
/// identifier); variables are a parse error, because facts denote stored
/// tuples. The predicate is registered extensional with the fact's arity;
/// adding facts to an intensional predicate (a query or view head) is
/// kInvalidArgument — views have extents, not facts.
[[nodiscard]] Result<Atom> ParseFact(std::string_view text, Catalog* catalog);

}  // namespace aqv

#endif  // AQV_CQ_PARSER_H_
