#ifndef AQV_CQ_CANONICAL_DB_H_
#define AQV_CQ_CANONICAL_DB_H_

#include <vector>

#include "cq/catalog.h"
#include "cq/query.h"

namespace aqv {

/// \brief Result of freezing a query: the query with every variable replaced
/// by a distinct fresh constant — the classic canonical database of Chandra &
/// Merlin, reified as a (variable-free) query.
struct FrozenQuery {
  /// Variable-free copy of the source query.
  Query frozen;
  /// var_to_const[v] is the constant that replaced source variable v.
  std::vector<ConstId> var_to_const;
};

/// Freezes `q` by interning one fresh constant per variable in `catalog`.
/// Used by the comparison-containment linearization test and by evaluation
/// cross-checks (Q1 ⊑ Q2 iff head(Q1) frozen ∈ Q2(canonical_db(Q1))).
FrozenQuery FreezeQuery(const Query& q, Catalog* catalog);

}  // namespace aqv

#endif  // AQV_CQ_CANONICAL_DB_H_
