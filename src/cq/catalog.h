#ifndef AQV_CQ_CATALOG_H_
#define AQV_CQ_CATALOG_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cq/global_symbols.h"
#include "cq/term.h"
#include "util/interner.h"
#include "util/status.h"

namespace aqv {

/// Whether a predicate names stored data (extensional) or is defined by a
/// rule head — a query or view name (intensional).
enum class PredKind : uint8_t {
  kExtensional = 0,
  kIntensional = 1,
};

/// Metadata for one predicate symbol. `global` is the process-wide id of
/// the (name, arity) meaning (cq/global_symbols.h): equal across catalogs,
/// the identity catalog-independent fingerprints hash.
struct PredInfo {
  std::string name;
  int arity = 0;
  PredKind kind = PredKind::kExtensional;
  GlobalId global = -1;
};

/// Metadata for one constant symbol. `numeric` is set when the constant was
/// written as an integer literal; comparison predicates require numeric or
/// symbolic consistency (see comparison_containment). `global` is the
/// process-wide id of the source text (cq/global_symbols.h).
struct ConstInfo {
  std::string name;
  std::optional<int64_t> numeric;
  GlobalId global = -1;
};

/// \brief Symbol tables shared by every query, view, and database instance
/// of one rewriting problem.
///
/// The Catalog owns predicate symbols (name, arity, kind) and constant
/// symbols. Queries store only dense ids into it. Not thread-safe: one
/// Catalog per problem instance.
class Catalog {
 public:
  /// Registers `name` with `arity`, or returns the existing id.
  /// Fails with kInvalidArgument if `name` exists with a different arity.
  [[nodiscard]] Result<PredId> GetOrAddPredicate(std::string_view name, int arity,
                                   PredKind kind = PredKind::kExtensional);

  /// Returns the id of `name`, or kNotFound.
  [[nodiscard]] Result<PredId> FindPredicate(std::string_view name) const;

  /// Marks an existing predicate intensional (used when a parsed rule head
  /// re-uses a previously body-only symbol).
  void SetPredKind(PredId id, PredKind kind) { preds_[id].kind = kind; }

  const PredInfo& pred(PredId id) const { return preds_[id]; }
  int32_t num_predicates() const { return static_cast<int32_t>(preds_.size()); }

  /// Process-global id of predicate `id`'s meaning (name, arity).
  GlobalId pred_global(PredId id) const { return preds_[id].global; }
  /// Process-global id of constant `id`'s meaning (source text).
  GlobalId const_global(ConstId id) const { return consts_[id].global; }

  /// Interns a symbolic or numeric constant by its source text. Text that
  /// parses entirely as a (possibly negative) decimal integer becomes a
  /// numeric constant.
  ConstId InternConstant(std::string_view text);

  /// Interns the canonical text of an integer value.
  ConstId InternNumericConstant(int64_t value);

  /// Interns a fresh constant unused by any query so far (for freezing
  /// queries into canonical databases). Prefix appears in its name.
  ConstId FreshConstant(std::string_view prefix);

  const ConstInfo& constant(ConstId id) const { return consts_[id]; }
  int32_t num_constants() const { return static_cast<int32_t>(consts_.size()); }

 private:
  Interner pred_names_;
  std::vector<PredInfo> preds_;
  Interner const_names_;
  std::vector<ConstInfo> consts_;
  int64_t fresh_counter_ = 0;
};

}  // namespace aqv

#endif  // AQV_CQ_CATALOG_H_
