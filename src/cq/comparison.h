#ifndef AQV_CQ_COMPARISON_H_
#define AQV_CQ_COMPARISON_H_

#include <string>
#include <vector>

#include "cq/term.h"

namespace aqv {

class Catalog;

/// Comparison operators of the built-in predicate extension (LMSS Section on
/// queries with arithmetic comparisons). `>` and `>=` are normalized away at
/// parse time by swapping operands.
enum class CmpOp : uint8_t {
  kLt = 0,  ///< <
  kLe = 1,  ///< <=
  kEq = 2,  ///< =
  kNe = 3,  ///< !=
};

/// Returns the source spelling of `op`.
const char* CmpOpName(CmpOp op);

/// Evaluates `a op b` over integers.
bool EvalCmp(CmpOp op, int64_t a, int64_t b);

/// \brief A built-in comparison literal `lhs op rhs`.
///
/// Operands are variables or numeric constants; the parser rejects symbolic
/// (non-numeric) constants in comparisons.
struct Comparison {
  CmpOp op = CmpOp::kEq;
  Term lhs;
  Term rhs;

  Comparison() = default;
  Comparison(CmpOp o, Term l, Term r) : op(o), lhs(l), rhs(r) {}

  friend bool operator==(const Comparison& a, const Comparison& b) {
    return a.op == b.op && a.lhs == b.lhs && a.rhs == b.rhs;
  }

  std::string ToString(const Catalog& catalog,
                       const std::vector<std::string>& var_names) const;
};

}  // namespace aqv

#endif  // AQV_CQ_COMPARISON_H_
