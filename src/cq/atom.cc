#include "cq/atom.h"

#include "cq/catalog.h"

namespace aqv {

namespace {

std::string TermToString(Term t, const Catalog& catalog,
                         const std::vector<std::string>& var_names) {
  if (t.is_const()) return catalog.constant(t.constant()).name;
  VarId v = t.var();
  if (v >= 0 && v < static_cast<VarId>(var_names.size()) &&
      !var_names[v].empty()) {
    return var_names[v];
  }
  return "V" + std::to_string(v);
}

}  // namespace

std::string Atom::ToString(const Catalog& catalog,
                           const std::vector<std::string>& var_names) const {
  std::string out = catalog.pred(pred).name;
  out += '(';
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += TermToString(args[i], catalog, var_names);
  }
  out += ')';
  return out;
}

}  // namespace aqv
