#include "cq/term.h"

// Term is header-only; this TU anchors the target in the build graph and
// hosts nothing else intentionally.
