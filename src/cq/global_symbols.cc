#include "cq/global_symbols.h"

namespace aqv {

GlobalSymbols& GlobalSymbols::Instance() {
  // Function-local static: constructed on first use, never destroyed
  // before the last catalog (no static-destruction-order hazard — trivial
  // members aside from the map, and nothing interns during teardown).
  static GlobalSymbols* instance = new GlobalSymbols();
  return *instance;
}

GlobalId GlobalSymbols::PredKey(std::string_view name, int arity) {
  // Key shape "p/<arity>/<name>": arity first so a name used at two
  // arities yields two meanings; the 'p' prefix keeps predicates and
  // constants in disjoint key spaces within one map.
  std::string key = "p/" + std::to_string(arity) + "/" + std::string(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      ids_.emplace(std::move(key), static_cast<GlobalId>(ids_.size()));
  return it->second;
}

GlobalId GlobalSymbols::ConstKey(std::string_view text) {
  std::string key = "c/" + std::string(text);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] =
      ids_.emplace(std::move(key), static_cast<GlobalId>(ids_.size()));
  return it->second;
}

size_t GlobalSymbols::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ids_.size();
}

}  // namespace aqv
