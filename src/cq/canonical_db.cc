#include "cq/canonical_db.h"

#include <string>

namespace aqv {

FrozenQuery FreezeQuery(const Query& q, Catalog* catalog) {
  FrozenQuery out;
  out.var_to_const.resize(q.num_vars());
  for (VarId v = 0; v < q.num_vars(); ++v) {
    out.var_to_const[v] = catalog->FreshConstant("frz_" + q.var_name(v) + "_");
  }
  auto freeze_term = [&](Term t) -> Term {
    if (t.is_const()) return t;
    return Term::Const(out.var_to_const[t.var()]);
  };
  Query frozen(catalog);
  Atom head = q.head();
  for (Term& t : head.args) t = freeze_term(t);
  frozen.set_head(std::move(head));
  for (const Atom& a : q.body()) {
    Atom fa = a;
    for (Term& t : fa.args) t = freeze_term(t);
    frozen.AddBodyAtom(std::move(fa));
  }
  for (const Comparison& c : q.comparisons()) {
    frozen.AddComparison(
        Comparison(c.op, freeze_term(c.lhs), freeze_term(c.rhs)));
  }
  out.frozen = std::move(frozen);
  return out;
}

}  // namespace aqv
