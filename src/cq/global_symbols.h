/// \file
/// Process-global symbol interning: the name-level identity layer under
/// catalog-independent fingerprints. Every Catalog remains the per-problem
/// symbol table (dense local ids indexing flat vectors), but at intern time
/// each predicate and constant is *also* registered here, yielding a
/// GlobalId that is a pure function of the symbol's meaning — (name, arity)
/// for predicates, source text for constants — shared by every catalog in
/// the process. Two queries parsed into different catalogs from the same
/// surface text therefore agree on every global id, which is what lets
/// Query::GlobalFingerprint() and the containment oracle's canonical
/// encodings (containment/oracle.h) match across connections of the
/// multiplexed frontend server: one server-lifetime cache, many
/// short-lived per-connection catalogs.
///
/// Thread safety: catalogs are single-threaded, but distinct catalogs
/// intern concurrently (one per live server connection), so the global
/// table is mutex-guarded. Ids are assigned in first-intern order and are
/// stable for the life of the process; they are never rendered to users,
/// so the process-history dependence of their numeric values is invisible
/// (they only ever feed hashes and equality).

#ifndef AQV_CQ_GLOBAL_SYMBOLS_H_
#define AQV_CQ_GLOBAL_SYMBOLS_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace aqv {

/// Process-wide id of a predicate meaning (name, arity) or a constant
/// meaning (source text). Distinct from the per-catalog dense PredId /
/// ConstId, which keep indexing flat vectors.
using GlobalId = int64_t;

/// \brief The process-global symbol table. One instance per process
/// (Instance()); all members are safe to call from any thread.
class GlobalSymbols {
 public:
  static GlobalSymbols& Instance();

  GlobalSymbols(const GlobalSymbols&) = delete;
  GlobalSymbols& operator=(const GlobalSymbols&) = delete;

  /// Global id of the predicate meaning (name, arity). The arity is part
  /// of the key: two catalogs may bind one name to different arities, and
  /// those must never alias in a shared cache.
  GlobalId PredKey(std::string_view name, int arity);

  /// Global id of the constant meaning `text` (the exact source spelling;
  /// Catalog::InternConstant derives numeric values from the same text, so
  /// equal ids imply equal values).
  GlobalId ConstKey(std::string_view text);

  /// Symbols registered so far (diagnostics).
  size_t size() const;

 private:
  GlobalSymbols() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, GlobalId> ids_;
};

}  // namespace aqv

#endif  // AQV_CQ_GLOBAL_SYMBOLS_H_
