#include "cq/parser.h"

#include <cctype>
#include <map>
#include <string>

namespace aqv {

namespace {

enum class TokKind {
  kIdent,      // lowercase identifier
  kVariable,   // uppercase / underscore identifier
  kInteger,    // possibly negative integer literal
  kLParen,
  kRParen,
  kComma,
  kPeriod,
  kImplies,    // :-
  kOp,         // comparison operator, text in `text`
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  int pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpaceAndComments();
      if (pos_ >= input_.size()) break;
      int start = static_cast<int>(pos_);
      char c = input_[pos_];
      if (c == '(') {
        out.push_back({TokKind::kLParen, "(", start});
        ++pos_;
      } else if (c == ')') {
        out.push_back({TokKind::kRParen, ")", start});
        ++pos_;
      } else if (c == ',') {
        out.push_back({TokKind::kComma, ",", start});
        ++pos_;
      } else if (c == '.') {
        out.push_back({TokKind::kPeriod, ".", start});
        ++pos_;
      } else if (c == ':') {
        if (pos_ + 1 < input_.size() && input_[pos_ + 1] == '-') {
          out.push_back({TokKind::kImplies, ":-", start});
          pos_ += 2;
        } else {
          return Err("expected ':-'", start);
        }
      } else if (c == '<' || c == '>' || c == '=' || c == '!') {
        std::string op(1, c);
        ++pos_;
        if (pos_ < input_.size() && input_[pos_] == '=') {
          op += '=';
          ++pos_;
        }
        if (op == "!") return Err("expected '!='", start);
        out.push_back({TokKind::kOp, op, start});
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < input_.size() &&
                  std::isdigit(static_cast<unsigned char>(input_[pos_ + 1])))) {
        size_t begin = pos_;
        if (c == '-') ++pos_;
        while (pos_ < input_.size() &&
               std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
          ++pos_;
        }
        out.push_back({TokKind::kInteger,
                       std::string(input_.substr(begin, pos_ - begin)), start});
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t begin = pos_;
        while (pos_ < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
                input_[pos_] == '_')) {
          ++pos_;
        }
        std::string word(input_.substr(begin, pos_ - begin));
        bool is_var = std::isupper(static_cast<unsigned char>(word[0])) ||
                      word[0] == '_';
        out.push_back({is_var ? TokKind::kVariable : TokKind::kIdent,
                       std::move(word), start});
      } else {
        return Err(std::string("unexpected character '") + c + "'", start);
      }
    }
    out.push_back({TokKind::kEnd, "", static_cast<int>(pos_)});
    return out;
  }

 private:
  Status Err(const std::string& msg, int pos) {
    return Status::ParseError(msg + " at offset " + std::to_string(pos));
  }

  void SkipSpaceAndComments() {
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '%') {
        while (pos_ < input_.size() && input_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

class RuleParser {
 public:
  RuleParser(const std::vector<Token>& tokens, size_t* cursor,
             Catalog* catalog)
      : tokens_(tokens), cursor_(cursor), catalog_(catalog) {}

  /// Parses one rule ending in '.'; leaves cursor after the period.
  Result<Query> ParseRule() {
    Query q(catalog_);
    var_ids_.clear();

    AQV_ASSIGN_OR_RETURN(Atom head, ParseAtom(&q, PredKind::kIntensional));
    q.set_head(std::move(head));

    if (Peek().kind == TokKind::kImplies) {
      Advance();
      while (true) {
        AQV_RETURN_NOT_OK(ParseLiteral(&q));
        if (Peek().kind == TokKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Peek().kind != TokKind::kPeriod) {
      return Err("expected '.' at end of rule");
    }
    Advance();
    AQV_RETURN_NOT_OK(q.Validate());
    return q;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = *cursor_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  void Advance() { ++*cursor_; }

  Status Err(const std::string& msg) {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(Peek().pos) + " (near '" +
                              Peek().text + "')");
  }

  Result<Term> ParseTerm(Query* q) {
    const Token& t = Peek();
    if (t.kind == TokKind::kVariable) {
      Advance();
      auto it = var_ids_.find(t.text);
      if (it != var_ids_.end()) return Term::Var(it->second);
      VarId v = q->AddVariable(t.text);
      var_ids_.emplace(t.text, v);
      return Term::Var(v);
    }
    if (t.kind == TokKind::kIdent || t.kind == TokKind::kInteger) {
      Advance();
      return Term::Const(catalog_->InternConstant(t.text));
    }
    return Err("expected term");
  }

  Result<Atom> ParseAtom(Query* q, PredKind kind) {
    const Token& name = Peek();
    if (name.kind != TokKind::kIdent) return Err("expected predicate name");
    Advance();
    if (Peek().kind != TokKind::kLParen) return Err("expected '('");
    Advance();
    std::vector<Term> args;
    if (Peek().kind != TokKind::kRParen) {
      while (true) {
        AQV_ASSIGN_OR_RETURN(Term t, ParseTerm(q));
        args.push_back(t);
        if (Peek().kind == TokKind::kComma) {
          Advance();
          continue;
        }
        break;
      }
    }
    if (Peek().kind != TokKind::kRParen) return Err("expected ')'");
    Advance();
    AQV_ASSIGN_OR_RETURN(
        PredId pred, catalog_->GetOrAddPredicate(
                         name.text, static_cast<int>(args.size()), kind));
    return Atom(pred, std::move(args));
  }

  Status ParseLiteral(Query* q) {
    // Lookahead: "<term> <op>" means a comparison; "<ident> (" means an atom.
    const Token& t = Peek();
    bool comparison =
        (t.kind == TokKind::kVariable || t.kind == TokKind::kInteger) ||
        (t.kind == TokKind::kIdent && Peek(1).kind == TokKind::kOp);
    if (comparison) {
      AQV_ASSIGN_OR_RETURN(Term lhs, ParseTerm(q));
      if (Peek().kind != TokKind::kOp) return Err("expected comparison operator");
      std::string op = Peek().text;
      Advance();
      AQV_ASSIGN_OR_RETURN(Term rhs, ParseTerm(q));
      if (op == "<") {
        q->AddComparison(Comparison(CmpOp::kLt, lhs, rhs));
      } else if (op == "<=") {
        q->AddComparison(Comparison(CmpOp::kLe, lhs, rhs));
      } else if (op == ">") {
        q->AddComparison(Comparison(CmpOp::kLt, rhs, lhs));
      } else if (op == ">=") {
        q->AddComparison(Comparison(CmpOp::kLe, rhs, lhs));
      } else if (op == "=") {
        q->AddComparison(Comparison(CmpOp::kEq, lhs, rhs));
      } else if (op == "!=") {
        q->AddComparison(Comparison(CmpOp::kNe, lhs, rhs));
      } else {
        return Err("unknown operator '" + op + "'");
      }
      return Status::OK();
    }
    AQV_ASSIGN_OR_RETURN(Atom a, ParseAtom(q, PredKind::kExtensional));
    q->AddBodyAtom(std::move(a));
    return Status::OK();
  }

  const std::vector<Token>& tokens_;
  size_t* cursor_;
  Catalog* catalog_;
  std::map<std::string, VarId> var_ids_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text, Catalog* catalog) {
  Lexer lexer(text);
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  size_t cursor = 0;
  RuleParser parser(tokens, &cursor, catalog);
  AQV_ASSIGN_OR_RETURN(Query q, parser.ParseRule());
  if (tokens[cursor].kind != TokKind::kEnd) {
    return Status::ParseError("trailing input after rule at offset " +
                              std::to_string(tokens[cursor].pos));
  }
  return q;
}

Result<Atom> ParseFact(std::string_view text, Catalog* catalog) {
  Lexer lexer(text);
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  size_t cursor = 0;
  auto peek = [&]() -> const Token& {
    return cursor < tokens.size() ? tokens[cursor] : tokens.back();
  };
  auto err = [&](const std::string& msg) {
    return Status::ParseError(msg + " at offset " +
                              std::to_string(peek().pos) + " (near '" +
                              peek().text + "')");
  };
  if (peek().kind != TokKind::kIdent) return err("expected predicate name");
  std::string name = peek().text;
  ++cursor;
  if (peek().kind != TokKind::kLParen) return err("expected '('");
  ++cursor;
  std::vector<Term> args;
  if (peek().kind != TokKind::kRParen) {
    while (true) {
      if (peek().kind == TokKind::kVariable) {
        return err("facts must be ground: variable '" + peek().text + "'");
      }
      if (peek().kind != TokKind::kIdent &&
          peek().kind != TokKind::kInteger) {
        return err("expected constant");
      }
      args.push_back(Term::Const(catalog->InternConstant(peek().text)));
      ++cursor;
      if (peek().kind == TokKind::kComma) {
        ++cursor;
        continue;
      }
      break;
    }
  }
  if (peek().kind != TokKind::kRParen) return err("expected ')'");
  ++cursor;
  if (peek().kind != TokKind::kPeriod) return err("expected '.' after fact");
  ++cursor;
  if (peek().kind != TokKind::kEnd) return err("trailing input after fact");
  AQV_ASSIGN_OR_RETURN(
      PredId pred,
      catalog->GetOrAddPredicate(name, static_cast<int>(args.size()),
                                 PredKind::kExtensional));
  if (catalog->pred(pred).kind == PredKind::kIntensional) {
    return Status::InvalidArgument(
        "cannot add facts to intensional predicate '" + name +
        "' (a query or view head)");
  }
  return Atom(pred, std::move(args));
}

Result<std::vector<Query>> ParseProgram(std::string_view text,
                                        Catalog* catalog) {
  Lexer lexer(text);
  AQV_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  size_t cursor = 0;
  std::vector<Query> out;
  while (tokens[cursor].kind != TokKind::kEnd) {
    RuleParser parser(tokens, &cursor, catalog);
    AQV_ASSIGN_OR_RETURN(Query q, parser.ParseRule());
    out.push_back(std::move(q));
  }
  return out;
}

}  // namespace aqv
