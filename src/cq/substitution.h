#ifndef AQV_CQ_SUBSTITUTION_H_
#define AQV_CQ_SUBSTITUTION_H_

#include <optional>
#include <vector>

#include "cq/atom.h"
#include "cq/query.h"
#include "cq/term.h"

namespace aqv {

/// \brief A partial mapping from variables (of a fixed source query) to
/// terms (of a target query), the workhorse of homomorphism search and
/// unification.
///
/// Stored as a flat vector indexed by VarId so bind/lookup are O(1); the
/// trail-based Checkpoint/Rollback pair supports cheap backtracking.
class Substitution {
 public:
  explicit Substitution(int num_source_vars)
      : bindings_(num_source_vars) {}

  int num_source_vars() const { return static_cast<int>(bindings_.size()); }

  bool IsBound(VarId v) const { return bindings_[v].has_value(); }
  Term Get(VarId v) const { return *bindings_[v]; }

  /// Binds `v` to `t` and records it on the trail. Precondition: unbound.
  void Bind(VarId v, Term t) {
    bindings_[v] = t;
    trail_.push_back(v);
  }

  /// Attempts to bind or confirm `v == t`. Returns false on clash.
  bool BindOrCheck(VarId v, Term t) {
    if (IsBound(v)) return Get(v) == t;
    Bind(v, t);
    return true;
  }

  /// Applies the substitution to a term. Unbound variables map to
  /// themselves (useful only when source and target var spaces coincide).
  Term Apply(Term t) const {
    if (t.is_var() && IsBound(t.var())) return Get(t.var());
    return t;
  }

  /// Applies the substitution to every argument of `a`.
  Atom ApplyToAtom(const Atom& a) const;

  /// Trail position for later rollback.
  size_t Checkpoint() const { return trail_.size(); }

  /// Unbinds everything recorded after `checkpoint`.
  void Rollback(size_t checkpoint) {
    while (trail_.size() > checkpoint) {
      bindings_[trail_.back()].reset();
      trail_.pop_back();
    }
  }

 private:
  std::vector<std::optional<Term>> bindings_;
  std::vector<VarId> trail_;
};

/// \brief Variable-space importer used when splicing one query's atoms into
/// another (expansion, candidate construction, hardness reductions).
///
/// Lazily adds a target variable per source variable; constants pass through.
class VarImporter {
 public:
  /// `tag` prefixes imported variable names to keep ToString readable.
  VarImporter(const Query& source, Query* target, std::string tag);

  /// The target term for source term `t`.
  Term Map(Term t);

  /// Pre-binds source variable `v` to an existing target term (used to
  /// identify view head variables with rewriting arguments before import).
  void Preset(VarId v, Term target_term);

  /// True if source variable `v` already has a target term.
  bool HasMapping(VarId v) const { return map_[v].has_value(); }

  /// Imports an atom, mapping every argument.
  Atom ImportAtom(const Atom& a);

  /// Imports a comparison literal.
  Comparison ImportComparison(const Comparison& c);

 private:
  const Query& source_;
  Query* target_;
  std::string tag_;
  std::vector<std::optional<Term>> map_;
};

/// Returns `q` with its variables renamed to fresh names `<prefix><i>`;
/// structure otherwise identical. Used to standardize queries apart.
Query RenameVariables(const Query& q, std::string_view prefix);

}  // namespace aqv

#endif  // AQV_CQ_SUBSTITUTION_H_
