#ifndef AQV_CQ_TERM_H_
#define AQV_CQ_TERM_H_

#include <cstdint>
#include <functional>

namespace aqv {

/// Dense id of a predicate symbol in a Catalog.
using PredId = int32_t;
/// Dense id of a constant symbol in a Catalog.
using ConstId = int32_t;
/// Query-local dense id of a variable (0 .. Query::num_vars()-1).
using VarId = int32_t;

/// Kind discriminator for Term.
enum class TermKind : uint8_t {
  kVariable = 0,
  kConstant = 1,
};

/// \brief A term of a conjunctive query: a variable or a constant.
///
/// Variables are query-local dense ids so substitutions and homomorphisms can
/// use flat vectors. Constants are Catalog-interned ids. Terms are value
/// types, 8 bytes, freely copyable.
class Term {
 public:
  /// Default-constructs variable 0; prefer the named factories.
  Term() : id_(0), kind_(TermKind::kVariable) {}

  static Term Var(VarId id) { return Term(id, TermKind::kVariable); }
  static Term Const(ConstId id) { return Term(id, TermKind::kConstant); }

  TermKind kind() const { return kind_; }
  bool is_var() const { return kind_ == TermKind::kVariable; }
  bool is_const() const { return kind_ == TermKind::kConstant; }

  /// Variable id; precondition: is_var().
  VarId var() const { return id_; }
  /// Constant id; precondition: is_const().
  ConstId constant() const { return id_; }

  /// Raw id regardless of kind (for hashing / dense packing).
  int32_t raw_id() const { return id_; }

  friend bool operator==(Term a, Term b) {
    return a.kind_ == b.kind_ && a.id_ == b.id_;
  }
  friend bool operator!=(Term a, Term b) { return !(a == b); }
  friend bool operator<(Term a, Term b) {
    if (a.kind_ != b.kind_) return a.kind_ < b.kind_;
    return a.id_ < b.id_;
  }

  /// 64-bit packing (kind in bit 32) for hash maps.
  uint64_t Pack() const {
    return (static_cast<uint64_t>(kind_) << 32) |
           static_cast<uint32_t>(id_);
  }

 private:
  Term(int32_t id, TermKind kind) : id_(id), kind_(kind) {}

  int32_t id_;
  TermKind kind_;
};

struct TermHash {
  size_t operator()(Term t) const {
    return std::hash<uint64_t>()(t.Pack() * 0x9e3779b97f4a7c15ULL);
  }
};

}  // namespace aqv

#endif  // AQV_CQ_TERM_H_
