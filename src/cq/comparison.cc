#include "cq/comparison.h"

#include "cq/catalog.h"

namespace aqv {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
  }
  return "?";
}

bool EvalCmp(CmpOp op, int64_t a, int64_t b) {
  switch (op) {
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
  }
  return false;
}

std::string Comparison::ToString(
    const Catalog& catalog, const std::vector<std::string>& var_names) const {
  auto render = [&](Term t) -> std::string {
    if (t.is_const()) return catalog.constant(t.constant()).name;
    VarId v = t.var();
    if (v >= 0 && v < static_cast<VarId>(var_names.size()) &&
        !var_names[v].empty()) {
      return var_names[v];
    }
    return "V" + std::to_string(v);
  };
  return render(lhs) + " " + CmpOpName(op) + " " + render(rhs);
}

}  // namespace aqv
