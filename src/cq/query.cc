#include "cq/query.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <tuple>
#include <utility>

#include "util/hash.h"

namespace aqv {

VarId Query::AddVariable(std::string name) {
  var_names_.push_back(std::move(name));
  return static_cast<VarId>(var_names_.size()) - 1;
}

VarId Query::AddVariables(int count, std::string_view prefix) {
  VarId first = static_cast<VarId>(var_names_.size());
  for (int i = 0; i < count; ++i) {
    var_names_.push_back(std::string(prefix) + std::to_string(i));
  }
  return first;
}

void Query::RemoveBodyAtom(int index) {
  body_.erase(body_.begin() + index);
}

std::vector<VarId> Query::HeadVars() const {
  std::vector<VarId> out;
  std::vector<bool> seen(var_names_.size(), false);
  for (Term t : head_.args) {
    if (t.is_var() && !seen[t.var()]) {
      seen[t.var()] = true;
      out.push_back(t.var());
    }
  }
  return out;
}

std::vector<bool> Query::DistinguishedMask() const {
  std::vector<bool> mask(var_names_.size(), false);
  for (Term t : head_.args) {
    if (t.is_var()) mask[t.var()] = true;
  }
  return mask;
}

std::vector<bool> Query::BodyVarMask() const {
  std::vector<bool> mask(var_names_.size(), false);
  for (const Atom& a : body_) {
    for (Term t : a.args) {
      if (t.is_var()) mask[t.var()] = true;
    }
  }
  return mask;
}

std::vector<std::vector<int>> Query::VarOccurrences() const {
  std::vector<std::vector<int>> occ(var_names_.size());
  for (int i = 0; i < static_cast<int>(body_.size()); ++i) {
    for (Term t : body_[i].args) {
      if (t.is_var()) {
        auto& v = occ[t.var()];
        if (v.empty() || v.back() != i) v.push_back(i);
      }
    }
  }
  return occ;
}

Status Query::Validate() const {
  if (catalog_ == nullptr) return Status::InvalidArgument("query has no catalog");
  if (head_.pred < 0) return Status::InvalidArgument("query has no head");
  auto check_atom = [&](const Atom& a) -> Status {
    if (a.pred < 0 || a.pred >= catalog_->num_predicates()) {
      return Status::InvalidArgument("atom references unknown predicate id");
    }
    if (a.arity() != catalog_->pred(a.pred).arity) {
      return Status::InvalidArgument(
          "atom arity mismatch for predicate '" + catalog_->pred(a.pred).name +
          "': got " + std::to_string(a.arity()) + ", declared " +
          std::to_string(catalog_->pred(a.pred).arity));
    }
    for (Term t : a.args) {
      if (t.is_var() && (t.var() < 0 || t.var() >= num_vars())) {
        return Status::InvalidArgument("atom references out-of-range variable");
      }
    }
    return Status::OK();
  };
  AQV_RETURN_NOT_OK(check_atom(head_));
  for (const Atom& a : body_) AQV_RETURN_NOT_OK(check_atom(a));

  std::vector<bool> in_body = BodyVarMask();
  for (Term t : head_.args) {
    if (t.is_var() && !in_body[t.var()]) {
      return Status::InvalidArgument("unsafe head variable '" +
                                     var_names_[t.var()] + "'");
    }
  }
  for (const Comparison& c : comparisons_) {
    for (Term t : {c.lhs, c.rhs}) {
      if (t.is_var()) {
        if (t.var() < 0 || t.var() >= num_vars() || !in_body[t.var()]) {
          return Status::InvalidArgument(
              "comparison uses variable not bound in the body");
        }
      } else if (!catalog_->constant(t.constant()).numeric.has_value()) {
        return Status::InvalidArgument(
            "comparison uses non-numeric constant '" +
            catalog_->constant(t.constant()).name + "'");
      }
    }
  }
  return Status::OK();
}

std::string Query::ToString() const {
  std::string out = head_.ToString(*catalog_, var_names_);
  out += " :- ";
  bool first = true;
  for (const Atom& a : body_) {
    if (!first) out += ", ";
    first = false;
    out += a.ToString(*catalog_, var_names_);
  }
  for (const Comparison& c : comparisons_) {
    if (!first) out += ", ";
    first = false;
    out += c.ToString(*catalog_, var_names_);
  }
  out += '.';
  return out;
}

namespace {

constexpr uint64_t kConstTag = 0x517cc1b727220a95ULL;
constexpr uint64_t kVarTag = 0x2545f4914f6cdd1dULL;

// Symbol-key policies for the colour-refinement machinery and encoders.
// LocalKeys feeds catalog-local dense ids (CanonicalKey / CanonicalForm /
// Fingerprint — identities confined to one catalog); GlobalKeys feeds
// process-global interned ids (the catalog-independent encodings shared
// caches key on). Null-catalog queries fall back to local ids so the
// default-constructed Query stays safe to hash.
struct LocalKeys {
  uint64_t pred(const Query&, PredId p) const {
    return static_cast<uint64_t>(p);
  }
  uint64_t cst(const Query&, ConstId c) const {
    return static_cast<uint64_t>(c);
  }
};
struct GlobalKeys {
  uint64_t pred(const Query& q, PredId p) const {
    if (q.catalog() == nullptr || p < 0) return static_cast<uint64_t>(p);
    return static_cast<uint64_t>(q.catalog()->pred_global(p));
  }
  uint64_t cst(const Query& q, ConstId c) const {
    if (q.catalog() == nullptr || c < 0) return static_cast<uint64_t>(c);
    return static_cast<uint64_t>(q.catalog()->const_global(c));
  }
};

// One round of colour refinement: each variable's colour becomes a hash of
// its old colour together with the multiset of (pred, position, old colours
// of co-occurring terms) contexts it appears in.
template <typename Keys>
void RefineColors(const Query& q, const Keys& keys,
                  std::vector<uint64_t>* colors) {
  auto term_color = [&](Term t) -> uint64_t {
    if (t.is_const()) return kConstTag ^ keys.cst(q, t.constant());
    return (*colors)[t.var()];
  };
  std::vector<std::vector<uint64_t>> contexts(colors->size());
  for (const Atom& a : q.body()) {
    for (int i = 0; i < a.arity(); ++i) {
      if (!a.args[i].is_var()) continue;
      Fnv1a h;
      h.Mix(keys.pred(q, a.pred));
      h.Mix(static_cast<uint64_t>(i));
      for (int j = 0; j < a.arity(); ++j) h.Mix(term_color(a.args[j]));
      contexts[a.args[i].var()].push_back(h.hash());
    }
  }
  for (size_t v = 0; v < colors->size(); ++v) {
    std::sort(contexts[v].begin(), contexts[v].end());
    Fnv1a h((*colors)[v] * 0x9e3779b97f4a7c15ULL);
    for (uint64_t c : contexts[v]) h.Mix(c);
    (*colors)[v] = h.hash();
  }
}

// Colour-refinement variable colours shared by CanonicalKey, CanonicalForm,
// Fingerprint, and the catalog-independent encodings. Initial colours:
// distinguished variables keyed by head position so that head-permutations
// are distinguished; existential variables uniform; comparison
// participation feeds colours too.
template <typename Keys>
std::vector<uint64_t> ComputeVarColors(const Query& q, const Keys& keys) {
  std::vector<uint64_t> colors(q.num_vars(), kVarTag);
  for (size_t i = 0; i < q.head().args.size(); ++i) {
    if (q.head().args[i].is_var()) {
      colors[q.head().args[i].var()] ^= (i + 1) * 0xff51afd7ed558ccdULL;
    }
  }
  for (const Comparison& c : q.comparisons()) {
    auto mixin = [&](Term t, uint64_t tag) {
      if (t.is_var()) colors[t.var()] ^= tag;
    };
    mixin(c.lhs, 0xc4ceb9fe1a85ec53ULL * (static_cast<uint64_t>(c.op) + 1));
    mixin(c.rhs, 0xb492b66fbe98f273ULL * (static_cast<uint64_t>(c.op) + 1));
  }
  for (int round = 0; round < 3; ++round) RefineColors(q, keys, &colors);
  return colors;
}

}  // namespace

std::string Query::CanonicalKey() const {
  std::vector<uint64_t> colors = ComputeVarColors(*this, LocalKeys{});

  // Canonical atom strings ordered lexicographically.
  auto term_key = [&](Term t) -> std::string {
    if (t.is_const()) return "c" + std::to_string(t.constant());
    return "v" + std::to_string(colors[t.var()]);
  };
  std::vector<std::string> atom_keys;
  atom_keys.reserve(body_.size());
  for (const Atom& a : body_) {
    std::string k = "p" + std::to_string(a.pred);
    for (Term t : a.args) k += "," + term_key(t);
    atom_keys.push_back(std::move(k));
  }
  std::sort(atom_keys.begin(), atom_keys.end());
  // Duplicate atoms collapse (set semantics for the key).
  atom_keys.erase(std::unique(atom_keys.begin(), atom_keys.end()),
                  atom_keys.end());

  std::vector<std::string> cmp_keys;
  for (const Comparison& c : comparisons_) {
    cmp_keys.push_back(std::string(CmpOpName(c.op)) + term_key(c.lhs) + "|" +
                       term_key(c.rhs));
  }
  std::sort(cmp_keys.begin(), cmp_keys.end());

  std::string key = "H" + std::to_string(head_.pred);
  for (Term t : head_.args) key += "," + term_key(t);
  for (const auto& k : atom_keys) key += ";" + k;
  for (const auto& k : cmp_keys) key += ";#" + k;
  return key;
}

Query Query::CanonicalForm() const {
  std::vector<uint64_t> colors = ComputeVarColors(*this, LocalKeys{});
  auto term_key = [&](Term t) -> std::pair<uint64_t, uint64_t> {
    if (t.is_const()) return {1, static_cast<uint64_t>(t.constant())};
    return {0, colors[t.var()]};
  };

  // Body order: sort indices by (pred, arg keys); exact duplicates collapse
  // later (set semantics, as in CanonicalKey). Ties between distinct atoms
  // the colours cannot separate keep input order — deterministic, merely
  // not canonical across every isomorphism.
  std::vector<int> order(body_.size());
  for (size_t i = 0; i < body_.size(); ++i) order[i] = static_cast<int>(i);
  auto atom_key = [&](int i) {
    std::vector<std::pair<uint64_t, uint64_t>> k;
    k.reserve(body_[i].args.size() + 1);
    k.push_back({0, static_cast<uint64_t>(body_[i].pred)});
    for (Term t : body_[i].args) k.push_back(term_key(t));
    return k;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return atom_key(a) < atom_key(b); });

  std::vector<int> cmp_order(comparisons_.size());
  for (size_t i = 0; i < comparisons_.size(); ++i) {
    cmp_order[i] = static_cast<int>(i);
  }
  auto cmp_key = [&](int i) {
    const Comparison& c = comparisons_[i];
    return std::tuple(static_cast<int>(c.op), term_key(c.lhs),
                      term_key(c.rhs));
  };
  std::stable_sort(cmp_order.begin(), cmp_order.end(),
                   [&](int a, int b) { return cmp_key(a) < cmp_key(b); });

  // Renumber variables by first appearance: head, sorted body, sorted
  // comparisons. Variables occurring nowhere are dropped.
  Query out(catalog_);
  std::vector<VarId> remap(var_names_.size(), -1);
  auto renumber = [&](Term t) -> Term {
    if (t.is_const()) return t;
    if (remap[t.var()] < 0) {
      remap[t.var()] = out.AddVariable("C" + std::to_string(out.num_vars()));
    }
    return Term::Var(remap[t.var()]);
  };
  Atom head = head_;
  for (Term& t : head.args) t = renumber(t);
  out.set_head(std::move(head));
  for (int i : order) {
    Atom a = body_[i];
    for (Term& t : a.args) t = renumber(t);
    bool dup = false;
    for (const Atom& prev : out.body()) {
      if (prev == a) dup = true;
    }
    if (!dup) out.AddBodyAtom(std::move(a));
  }
  for (int i : cmp_order) {
    Comparison c = comparisons_[i];
    c.lhs = renumber(c.lhs);
    c.rhs = renumber(c.rhs);
    out.AddComparison(c);
  }
  return out;
}

uint64_t StructuralHash(const Query& q) {
  Fnv1a h;
  auto mix_term = [&](Term t) {
    if (t.is_const()) {
      h.Mix(0x517cc1b727220a95ULL);
      h.Mix(static_cast<uint64_t>(t.constant()));
    } else {
      h.Mix(0x2545f4914f6cdd1dULL);
      h.Mix(static_cast<uint64_t>(t.var()));
    }
  };
  h.Mix(static_cast<uint64_t>(q.head().pred));
  for (Term t : q.head().args) mix_term(t);
  h.Mix(q.body().size());
  for (const Atom& a : q.body()) {
    h.Mix(static_cast<uint64_t>(a.pred));
    for (Term t : a.args) mix_term(t);
  }
  h.Mix(q.comparisons().size());
  for (const Comparison& c : q.comparisons()) {
    h.Mix(static_cast<uint64_t>(c.op));
    mix_term(c.lhs);
    mix_term(c.rhs);
  }
  return h.hash();
}

uint64_t Query::Fingerprint() const { return StructuralHash(CanonicalForm()); }

namespace {

// Flavor words keep raw and canonical encodings from ever comparing equal,
// so one cache may hold both kinds of key without ambiguity.
constexpr uint64_t kRawFlavor = 0xa0761d6478bd642fULL;
constexpr uint64_t kCanonFlavor = 0xe7037ed1a0b428dbULL;

}  // namespace

std::vector<uint64_t> GlobalRawEncoding(const Query& q) {
  GlobalKeys keys;
  std::vector<uint64_t> out;
  out.reserve(8 + 2 * q.head().args.size() + 4 * q.body().size() +
              5 * q.comparisons().size());
  auto emit_term = [&](Term t) {
    if (t.is_const()) {
      out.push_back(kConstTag);
      out.push_back(keys.cst(q, t.constant()));
    } else {
      out.push_back(kVarTag);
      out.push_back(static_cast<uint64_t>(t.var()));
    }
  };
  out.push_back(kRawFlavor);
  out.push_back(keys.pred(q, q.head().pred));
  out.push_back(q.head().args.size());
  for (Term t : q.head().args) emit_term(t);
  out.push_back(q.body().size());
  for (const Atom& a : q.body()) {
    out.push_back(keys.pred(q, a.pred));
    out.push_back(a.args.size());
    for (Term t : a.args) emit_term(t);
  }
  out.push_back(q.comparisons().size());
  for (const Comparison& c : q.comparisons()) {
    out.push_back(static_cast<uint64_t>(c.op));
    emit_term(c.lhs);
    emit_term(c.rhs);
  }
  // Mirrors operator=='s variable-count term so raw-equal implies
  // structurally interchangeable even for queries with trailing unused vars.
  out.push_back(static_cast<uint64_t>(q.num_vars()));
  return out;
}

std::vector<uint64_t> GlobalCanonicalEncoding(const Query& q) {
  GlobalKeys keys;
  std::vector<uint64_t> colors = ComputeVarColors(q, keys);
  auto term_key = [&](Term t) -> std::pair<uint64_t, uint64_t> {
    if (t.is_const()) return {1, keys.cst(q, t.constant())};
    return {0, colors[t.var()]};
  };

  // Sort body and comparisons exactly as CanonicalForm does, but by
  // global-id keys, so the order agrees across catalogs. Colour ties keep
  // input order — deterministic within a process, merely not canonical
  // across every isomorphism (the usual best-effort contract).
  const std::vector<Atom>& body = q.body();
  std::vector<int> order(body.size());
  for (size_t i = 0; i < body.size(); ++i) order[i] = static_cast<int>(i);
  auto atom_key = [&](int i) {
    std::vector<std::pair<uint64_t, uint64_t>> k;
    k.reserve(body[i].args.size() + 1);
    k.push_back({0, keys.pred(q, body[i].pred)});
    for (Term t : body[i].args) k.push_back(term_key(t));
    return k;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](int a, int b) { return atom_key(a) < atom_key(b); });

  const std::vector<Comparison>& cmps = q.comparisons();
  std::vector<int> cmp_order(cmps.size());
  for (size_t i = 0; i < cmps.size(); ++i) cmp_order[i] = static_cast<int>(i);
  auto cmp_key = [&](int i) {
    return std::tuple(static_cast<int>(cmps[i].op), term_key(cmps[i].lhs),
                      term_key(cmps[i].rhs));
  };
  std::stable_sort(cmp_order.begin(), cmp_order.end(),
                   [&](int a, int b) { return cmp_key(a) < cmp_key(b); });

  // Renumber variables by first appearance (head, sorted body, sorted
  // comparisons); drop exact duplicate atoms post-renumbering.
  std::vector<int32_t> remap(q.num_vars(), -1);
  int32_t next_var = 0;
  auto renumber = [&](Term t) -> Term {
    if (t.is_const()) return t;
    if (remap[t.var()] < 0) remap[t.var()] = next_var++;
    return Term::Var(remap[t.var()]);
  };
  Atom head = q.head();
  for (Term& t : head.args) t = renumber(t);
  std::vector<Atom> out_body;
  out_body.reserve(body.size());
  for (int i : order) {
    Atom a = body[i];
    for (Term& t : a.args) t = renumber(t);
    bool dup = false;
    for (const Atom& prev : out_body) {
      if (prev == a) dup = true;
    }
    if (!dup) out_body.push_back(std::move(a));
  }

  std::vector<uint64_t> out;
  out.reserve(8 + 2 * head.args.size() + 4 * out_body.size() +
              5 * cmps.size());
  auto emit_term = [&](Term t) {
    if (t.is_const()) {
      out.push_back(kConstTag);
      out.push_back(keys.cst(q, t.constant()));
    } else {
      out.push_back(kVarTag);
      out.push_back(static_cast<uint64_t>(t.var()));
    }
  };
  out.push_back(kCanonFlavor);
  out.push_back(keys.pred(q, head.pred));
  out.push_back(head.args.size());
  for (Term t : head.args) emit_term(t);
  out.push_back(out_body.size());
  for (const Atom& a : out_body) {
    out.push_back(keys.pred(q, a.pred));
    out.push_back(a.args.size());
    for (Term t : a.args) emit_term(t);
  }
  out.push_back(cmps.size());
  for (int i : cmp_order) {
    out.push_back(static_cast<uint64_t>(cmps[i].op));
    Comparison c = cmps[i];
    emit_term(renumber(c.lhs));
    emit_term(renumber(c.rhs));
  }
  return out;
}

uint64_t HashWords(const std::vector<uint64_t>& words) {
  Fnv1a h;
  for (uint64_t w : words) h.Mix(w);
  return h.hash();
}

uint64_t GlobalFingerprint(const Query& q) {
  return HashWords(GlobalCanonicalEncoding(q));
}

std::string UnionQuery::ToString() const {
  std::string out;
  for (const Query& q : disjuncts) {
    out += q.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace aqv
