#include "cq/query.h"

#include <algorithm>
#include <cstdint>
#include <map>

namespace aqv {

VarId Query::AddVariable(std::string name) {
  var_names_.push_back(std::move(name));
  return static_cast<VarId>(var_names_.size()) - 1;
}

VarId Query::AddVariables(int count, std::string_view prefix) {
  VarId first = static_cast<VarId>(var_names_.size());
  for (int i = 0; i < count; ++i) {
    var_names_.push_back(std::string(prefix) + std::to_string(i));
  }
  return first;
}

void Query::RemoveBodyAtom(int index) {
  body_.erase(body_.begin() + index);
}

std::vector<VarId> Query::HeadVars() const {
  std::vector<VarId> out;
  std::vector<bool> seen(var_names_.size(), false);
  for (Term t : head_.args) {
    if (t.is_var() && !seen[t.var()]) {
      seen[t.var()] = true;
      out.push_back(t.var());
    }
  }
  return out;
}

std::vector<bool> Query::DistinguishedMask() const {
  std::vector<bool> mask(var_names_.size(), false);
  for (Term t : head_.args) {
    if (t.is_var()) mask[t.var()] = true;
  }
  return mask;
}

std::vector<bool> Query::BodyVarMask() const {
  std::vector<bool> mask(var_names_.size(), false);
  for (const Atom& a : body_) {
    for (Term t : a.args) {
      if (t.is_var()) mask[t.var()] = true;
    }
  }
  return mask;
}

std::vector<std::vector<int>> Query::VarOccurrences() const {
  std::vector<std::vector<int>> occ(var_names_.size());
  for (int i = 0; i < static_cast<int>(body_.size()); ++i) {
    for (Term t : body_[i].args) {
      if (t.is_var()) {
        auto& v = occ[t.var()];
        if (v.empty() || v.back() != i) v.push_back(i);
      }
    }
  }
  return occ;
}

Status Query::Validate() const {
  if (catalog_ == nullptr) return Status::InvalidArgument("query has no catalog");
  if (head_.pred < 0) return Status::InvalidArgument("query has no head");
  auto check_atom = [&](const Atom& a) -> Status {
    if (a.pred < 0 || a.pred >= catalog_->num_predicates()) {
      return Status::InvalidArgument("atom references unknown predicate id");
    }
    if (a.arity() != catalog_->pred(a.pred).arity) {
      return Status::InvalidArgument(
          "atom arity mismatch for predicate '" + catalog_->pred(a.pred).name +
          "': got " + std::to_string(a.arity()) + ", declared " +
          std::to_string(catalog_->pred(a.pred).arity));
    }
    for (Term t : a.args) {
      if (t.is_var() && (t.var() < 0 || t.var() >= num_vars())) {
        return Status::InvalidArgument("atom references out-of-range variable");
      }
    }
    return Status::OK();
  };
  AQV_RETURN_NOT_OK(check_atom(head_));
  for (const Atom& a : body_) AQV_RETURN_NOT_OK(check_atom(a));

  std::vector<bool> in_body = BodyVarMask();
  for (Term t : head_.args) {
    if (t.is_var() && !in_body[t.var()]) {
      return Status::InvalidArgument("unsafe head variable '" +
                                     var_names_[t.var()] + "'");
    }
  }
  for (const Comparison& c : comparisons_) {
    for (Term t : {c.lhs, c.rhs}) {
      if (t.is_var()) {
        if (t.var() < 0 || t.var() >= num_vars() || !in_body[t.var()]) {
          return Status::InvalidArgument(
              "comparison uses variable not bound in the body");
        }
      } else if (!catalog_->constant(t.constant()).numeric.has_value()) {
        return Status::InvalidArgument(
            "comparison uses non-numeric constant '" +
            catalog_->constant(t.constant()).name + "'");
      }
    }
  }
  return Status::OK();
}

std::string Query::ToString() const {
  std::string out = head_.ToString(*catalog_, var_names_);
  out += " :- ";
  bool first = true;
  for (const Atom& a : body_) {
    if (!first) out += ", ";
    first = false;
    out += a.ToString(*catalog_, var_names_);
  }
  for (const Comparison& c : comparisons_) {
    if (!first) out += ", ";
    first = false;
    out += c.ToString(*catalog_, var_names_);
  }
  out += '.';
  return out;
}

namespace {

// One round of colour refinement: each variable's colour becomes a hash of
// its old colour together with the multiset of (pred, position, old colours
// of co-occurring terms) contexts it appears in.
void RefineColors(const Query& q, std::vector<uint64_t>* colors) {
  auto term_color = [&](Term t) -> uint64_t {
    if (t.is_const()) return 0x517cc1b727220a95ULL ^ (uint64_t)t.constant();
    return (*colors)[t.var()];
  };
  std::vector<std::vector<uint64_t>> contexts(colors->size());
  for (const Atom& a : q.body()) {
    for (int i = 0; i < a.arity(); ++i) {
      if (!a.args[i].is_var()) continue;
      uint64_t h = 0xcbf29ce484222325ULL;
      auto mix = [&h](uint64_t v) { h = (h ^ v) * 0x100000001b3ULL; };
      mix(static_cast<uint64_t>(a.pred));
      mix(static_cast<uint64_t>(i));
      for (int j = 0; j < a.arity(); ++j) mix(term_color(a.args[j]));
      contexts[a.args[i].var()].push_back(h);
    }
  }
  for (size_t v = 0; v < colors->size(); ++v) {
    std::sort(contexts[v].begin(), contexts[v].end());
    uint64_t h = (*colors)[v] * 0x9e3779b97f4a7c15ULL;
    for (uint64_t c : contexts[v]) h = (h ^ c) * 0x100000001b3ULL;
    (*colors)[v] = h;
  }
}

}  // namespace

std::string Query::CanonicalKey() const {
  // Initial colours: distinguished variables keyed by head position so that
  // head-permutations are distinguished; existential variables uniform.
  std::vector<uint64_t> colors(var_names_.size(), 0x2545f4914f6cdd1dULL);
  for (size_t i = 0; i < head_.args.size(); ++i) {
    if (head_.args[i].is_var()) {
      colors[head_.args[i].var()] ^= (i + 1) * 0xff51afd7ed558ccdULL;
    }
  }
  // Comparison participation feeds colours too.
  for (const Comparison& c : comparisons_) {
    auto mixin = [&](Term t, uint64_t tag) {
      if (t.is_var()) colors[t.var()] ^= tag;
    };
    mixin(c.lhs, 0xc4ceb9fe1a85ec53ULL * (static_cast<uint64_t>(c.op) + 1));
    mixin(c.rhs, 0xb492b66fbe98f273ULL * (static_cast<uint64_t>(c.op) + 1));
  }
  for (int round = 0; round < 3; ++round) RefineColors(*this, &colors);

  // Canonical atom strings ordered lexicographically.
  auto term_key = [&](Term t) -> std::string {
    if (t.is_const()) return "c" + std::to_string(t.constant());
    return "v" + std::to_string(colors[t.var()]);
  };
  std::vector<std::string> atom_keys;
  atom_keys.reserve(body_.size());
  for (const Atom& a : body_) {
    std::string k = "p" + std::to_string(a.pred);
    for (Term t : a.args) k += "," + term_key(t);
    atom_keys.push_back(std::move(k));
  }
  std::sort(atom_keys.begin(), atom_keys.end());
  // Duplicate atoms collapse (set semantics for the key).
  atom_keys.erase(std::unique(atom_keys.begin(), atom_keys.end()),
                  atom_keys.end());

  std::vector<std::string> cmp_keys;
  for (const Comparison& c : comparisons_) {
    cmp_keys.push_back(std::string(CmpOpName(c.op)) + term_key(c.lhs) + "|" +
                       term_key(c.rhs));
  }
  std::sort(cmp_keys.begin(), cmp_keys.end());

  std::string key = "H" + std::to_string(head_.pred);
  for (Term t : head_.args) key += "," + term_key(t);
  for (const auto& k : atom_keys) key += ";" + k;
  for (const auto& k : cmp_keys) key += ";#" + k;
  return key;
}

std::string UnionQuery::ToString() const {
  std::string out;
  for (const Query& q : disjuncts) {
    out += q.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace aqv
