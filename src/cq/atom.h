#ifndef AQV_CQ_ATOM_H_
#define AQV_CQ_ATOM_H_

#include <string>
#include <vector>

#include "cq/term.h"

namespace aqv {

class Catalog;

/// \brief A relational atom `p(t1, ..., tk)`.
///
/// Plain data carrier: predicate id plus argument terms. Arity consistency
/// with the Catalog is enforced at construction sites (parser, generators).
struct Atom {
  PredId pred = -1;
  std::vector<Term> args;

  Atom() = default;
  Atom(PredId p, std::vector<Term> a) : pred(p), args(std::move(a)) {}

  int arity() const { return static_cast<int>(args.size()); }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.pred == b.pred && a.args == b.args;
  }
  friend bool operator!=(const Atom& a, const Atom& b) { return !(a == b); }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (a.pred != b.pred) return a.pred < b.pred;
    return a.args < b.args;
  }

  /// Renders e.g. "edge(X, 3)" using names from `catalog` and `var_names`
  /// (var_names may be shorter than the max var id; missing names render as
  /// "V<i>").
  std::string ToString(const Catalog& catalog,
                       const std::vector<std::string>& var_names) const;
};

struct AtomHash {
  size_t operator()(const Atom& a) const {
    size_t h = std::hash<int32_t>()(a.pred);
    for (Term t : a.args) {
      h = h * 1099511628211ULL ^ TermHash()(t);
    }
    return h;
  }
};

}  // namespace aqv

#endif  // AQV_CQ_ATOM_H_
