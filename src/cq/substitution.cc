#include "cq/substitution.h"

#include <string>

namespace aqv {

Atom Substitution::ApplyToAtom(const Atom& a) const {
  Atom out(a.pred, a.args);
  for (Term& t : out.args) t = Apply(t);
  return out;
}

VarImporter::VarImporter(const Query& source, Query* target, std::string tag)
    : source_(source),
      target_(target),
      tag_(std::move(tag)),
      map_(source.num_vars()) {}

Term VarImporter::Map(Term t) {
  if (t.is_const()) return t;
  VarId v = t.var();
  if (!map_[v].has_value()) {
    VarId fresh = target_->AddVariable(tag_ + source_.var_name(v));
    map_[v] = Term::Var(fresh);
  }
  return *map_[v];
}

void VarImporter::Preset(VarId v, Term target_term) { map_[v] = target_term; }

Atom VarImporter::ImportAtom(const Atom& a) {
  Atom out(a.pred, a.args);
  for (Term& t : out.args) t = Map(t);
  return out;
}

Comparison VarImporter::ImportComparison(const Comparison& c) {
  return Comparison(c.op, Map(c.lhs), Map(c.rhs));
}

Query RenameVariables(const Query& q, std::string_view prefix) {
  Query out(q.catalog());
  for (int v = 0; v < q.num_vars(); ++v) {
    out.AddVariable(std::string(prefix) + std::to_string(v));
  }
  out.set_head(q.head());
  for (const Atom& a : q.body()) out.AddBodyAtom(a);
  for (const Comparison& c : q.comparisons()) out.AddComparison(c);
  return out;
}

}  // namespace aqv
