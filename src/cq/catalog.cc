#include "cq/catalog.h"

#include <charconv>

namespace aqv {

Result<PredId> Catalog::GetOrAddPredicate(std::string_view name, int arity,
                                          PredKind kind) {
  int32_t existing = pred_names_.Lookup(name);
  if (existing >= 0) {
    if (preds_[existing].arity != arity) {
      return Status::InvalidArgument(
          "predicate '" + std::string(name) + "' used with arity " +
          std::to_string(arity) + " but declared with arity " +
          std::to_string(preds_[existing].arity));
    }
    if (kind == PredKind::kIntensional) {
      preds_[existing].kind = PredKind::kIntensional;
    }
    return existing;
  }
  PredId id = pred_names_.Intern(name);
  preds_.push_back(PredInfo{std::string(name), arity, kind,
                            GlobalSymbols::Instance().PredKey(name, arity)});
  return id;
}

Result<PredId> Catalog::FindPredicate(std::string_view name) const {
  int32_t id = pred_names_.Lookup(name);
  if (id < 0) {
    return Status::NotFound("unknown predicate '" + std::string(name) + "'");
  }
  return id;
}

ConstId Catalog::InternConstant(std::string_view text) {
  int32_t existing = const_names_.Lookup(text);
  if (existing >= 0) return existing;
  ConstId id = const_names_.Intern(text);
  ConstInfo info;
  info.name = std::string(text);
  info.global = GlobalSymbols::Instance().ConstKey(text);
  int64_t value = 0;
  const char* begin = info.name.data();
  const char* end = begin + info.name.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc() && ptr == end) info.numeric = value;
  consts_.push_back(std::move(info));
  return id;
}

ConstId Catalog::InternNumericConstant(int64_t value) {
  return InternConstant(std::to_string(value));
}

ConstId Catalog::FreshConstant(std::string_view prefix) {
  for (;;) {
    std::string name =
        "_" + std::string(prefix) + std::to_string(fresh_counter_++);
    if (const_names_.Lookup(name) < 0) return InternConstant(name);
  }
}

}  // namespace aqv
